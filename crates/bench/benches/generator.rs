//! Micro-benchmarks of the workload generators (random §5.2 and structured
//! §8 graphs) and of the graph analyses that feed the adaptive metric.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rand::rngs::StdRng;
use rand::SeedableRng;
use taskgraph::analysis::GraphAnalysis;
use taskgraph::gen::{generate, generate_shape, ExecVariation, Shape, WorkloadSpec};

fn random_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generator/random");
    for variation in ExecVariation::paper_scenarios() {
        let spec = WorkloadSpec::paper(variation);
        group.bench_with_input(
            BenchmarkId::from_parameter(variation.label()),
            &spec,
            |b, spec| {
                let mut rng = StdRng::seed_from_u64(42);
                b.iter(|| generate(black_box(spec), &mut rng).unwrap())
            },
        );
    }
    group.finish();
}

fn shaped_generation(c: &mut Criterion) {
    let spec = WorkloadSpec::paper(ExecVariation::Mdet);
    let mut group = c.benchmark_group("generator/shapes");
    for shape in [
        Shape::Chain { length: 50 },
        Shape::InTree {
            depth: 6,
            branching: 2,
        },
        Shape::OutTree {
            depth: 6,
            branching: 2,
        },
        Shape::ForkJoin {
            stages: 8,
            width: 6,
        },
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(shape.label()),
            &shape,
            |b, &shape| {
                let mut rng = StdRng::seed_from_u64(42);
                b.iter(|| generate_shape(black_box(shape), &spec, &mut rng).unwrap())
            },
        );
    }
    group.finish();
}

fn analyses(c: &mut Criterion) {
    let spec = WorkloadSpec::paper(ExecVariation::Mdet);
    let mut rng = StdRng::seed_from_u64(42);
    let graph = generate(&spec, &mut rng).unwrap();
    let mut group = c.benchmark_group("generator/analysis");
    group.bench_function("avg_parallelism", |b| {
        b.iter(|| GraphAnalysis::new(black_box(&graph)).avg_parallelism())
    });
    group.bench_function("avg_parallelism_with_comm", |b| {
        b.iter(|| GraphAnalysis::new(black_box(&graph)).avg_parallelism_with_comm(1.0))
    });
    group.bench_function("levels_and_width", |b| {
        b.iter(|| {
            let an = GraphAnalysis::new(black_box(&graph));
            (an.depth(), an.width())
        })
    });
    group.finish();
}

criterion_group!(benches, random_generation, shaped_generation, analyses);
criterion_main!(benches);
