//! Benchmark support crate: see the `benches/` directory for Criterion
//! benchmarks regenerating each figure of the paper and micro-benchmarks of
//! the slicing and scheduling algorithms.
