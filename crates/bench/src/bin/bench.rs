//! Fixed-seed, fixed-iteration wall-clock benchmark of the FEAST pipeline.
//!
//! Measures the three pipeline stages — workload **generation**, deadline
//! **distribution** and list **scheduling** — for every paper metric at the
//! paper workload size and at 2× / 4× that size, then appends the results
//! to `BENCH_pipeline.json` so the repository carries a committed
//! performance trajectory that every future change extends.
//!
//! Unlike the Criterion benches (`cargo bench -p bench`), this binary uses
//! plain `Instant` timing with a deterministic workload sequence, so its
//! output is a small, diffable JSON file rather than an HTML report.
//!
//! ```text
//! cargo run --release -p bench --bin bench -- [--label NAME] \
//!     [--iterations N] [--out PATH] [--fresh] \
//!     [--guard LABEL] [--baseline PATH] [--guard-pct F] \
//!     [--overhead-gate] [--overhead-pct F] [--overhead-attempts N]
//! ```
//!
//! * `--label NAME`       tag for this run (default `run`);
//! * `--iterations N`     override the per-size iteration counts;
//! * `--out PATH`         output file (default `BENCH_pipeline.json`);
//! * `--fresh`            overwrite instead of appending to existing runs;
//! * `--guard LABEL`      after measuring, compare this run's **schedule**
//!   stage at the stress point against the run labelled `LABEL` in the
//!   baseline file and exit non-zero on regression (the CI bench guard);
//! * `--baseline PATH`    file holding the guard baseline (default: the
//!   `--out` path, read before this run is appended);
//! * `--guard-pct F`      maximum allowed schedule-stage mean regression
//!   in percent before the guard fails (default 25);
//! * `--overhead-gate`    additionally run the observatory overhead gate:
//!   schedule the stress workload twice per iteration over identical
//!   seeds — bare, and with the runner's full per-replication telemetry
//!   accounting (stage histograms, progress tracking, gated metrics
//!   writes, miss-log) — recording both as `stress-bare` /
//!   `stress-observed` points and failing if the order-balanced paired
//!   median of the schedule-stage difference exceeds the bare median by
//!   more than `--overhead-pct`;
//! * `--overhead-pct F`   overhead-gate budget in percent (default 2);
//! * `--overhead-attempts N`  gate attempts before failing (default 3).
//!   Run-level noise — preemption bursts, per-process code layout — only
//!   ever *inflates* the paired difference, so the first attempt under
//!   budget is proof the true accounting cost is under budget.

use std::sync::Arc;
use std::time::Instant;

use feast::telemetry::{self, Stage};
use feast::{MetricsWriter, ProgressTracker, Runner};
use platform::{Pinning, Platform};
use sched::{BusModel, ListScheduler, MissLog, SchedWorkspace};
use serde::{Deserialize, Serialize};
use slicing::{GraphDelta, MetricKind, SliceMemo, Slicer};
use taskgraph::gen::{generate_seeded, stream_label, stream_seed, ExecVariation, WorkloadSpec};
use taskgraph::{SubtaskId, Time};

/// Base seed for workload generation; iteration `i` draws from the seed
/// stream `stream_seed(SEED, size stream, 0, i)`, so the same graphs recur
/// across metrics and runs (paired measurement) while staying decorrelated
/// across workload sizes.
const SEED: u64 = 0x000F_EA57_BE5C;

/// Processor count used for the distribute and schedule stages.
const PROCESSORS: usize = 8;

/// Processor count of the schedule-stage stress point: large enough that
/// candidate-processor estimation dominates each dispatch.
const STRESS_PROCESSORS: usize = 32;

/// Size label of the schedule-stage stress point (4× paper subtasks on
/// [`STRESS_PROCESSORS`] processors under bus contention). The CI bench
/// guard compares the schedule-stage mean of these points and of the
/// [`DELTA_LABEL`] points.
const STRESS_LABEL: &str = "stress";

/// Processor count of the delta stress point. The delta point runs THRES
/// on [`BusModel::Delay`]: THRES keeps weight invalidation local to the
/// perturbed node (ADAPT's ξ-coupled surplus re-inflates *every* stretched
/// node on any WCET change, see EXPERIMENTS.md), and the paper's 8-way
/// platform makes distribution dominate end-to-end cost — the regime the
/// incremental pipeline targets.
const DELTA_PROCESSORS: usize = 8;

/// Size label of the incremental half of the delta stress point: per
/// single-node WCET perturbation of the 4× graph, `distribute` carries the
/// [`Slicer::redistribute`] time and `schedule` the
/// [`ListScheduler::repair`] time.
const DELTA_LABEL: &str = "stress-delta";

/// Size label of the paired from-scratch half: the same perturbed graphs
/// recomputed with `distribute` + `schedule_with` from clean state. The
/// incremental results are asserted bit-identical to these before either
/// point is recorded.
const DELTA_FULL_LABEL: &str = "stress-delta-full";

/// Single-node WCET perturbations applied (and measured) per stress graph.
const DELTA_PERTURBATIONS: usize = 16;

/// Minimum end-to-end (distribute + schedule) *mean* speedup of the
/// incremental delta point over its from-scratch pair that `--guard`
/// accepts.
///
/// The measured mean is ~1.4–1.7× (off-corridor deltas 6–14×, see
/// EXPERIMENTS.md §Incremental deltas): winner paths funnel through a
/// shared critical corridor, the corridor searches are the expensive ones,
/// and a delta touching the corridor must re-run them to keep the
/// bit-identity contract — so the uniform-random mean is dominated by the
/// corridor share, not by the replay machinery. The mean is also
/// tail-dominated (a few corridor hits carry most of the time), which
/// makes it noisy run-to-run; this floor is therefore a loose safety net,
/// and [`DELTA_P50_SPEEDUP_FLOOR`] is the sensitive detector.
const DELTA_SPEEDUP_FLOOR: f64 = 1.15;

/// Minimum end-to-end *median* (p50) speedup `--guard` accepts.
///
/// The p50 tracks the typical delta (measured ~2.3–2.5×) and is far more
/// stable across runs and machines than the tail-dominated mean. A
/// machinery regression — lost cache hits, a broken matched fast-forward —
/// drags *every* row towards 1×, so the median collapses with it; noise
/// does not move it much. 1.5× sits well below the measured value and
/// well above a broken pipeline.
const DELTA_P50_SPEEDUP_FLOOR: f64 = 1.5;

/// Aggregate wall-clock statistics of one pipeline stage.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct StageStats {
    total_us: u64,
    mean_us: f64,
    min_us: u64,
    /// Exact (nearest-rank) median. `None` on runs recorded before
    /// percentiles existed (the vendored serde reads an absent field as
    /// null).
    p50_us: Option<u64>,
    /// Exact (nearest-rank) 99th percentile; with the small fixed
    /// iteration counts this is the slowest or second-slowest sample.
    p99_us: Option<u64>,
}

impl StageStats {
    fn from_samples(samples: &[u64]) -> StageStats {
        let total: u64 = samples.iter().sum();
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        StageStats {
            total_us: total,
            mean_us: total as f64 / samples.len() as f64,
            min_us: sorted.first().copied().unwrap_or(0),
            // Exact order statistics — the same nearest-rank definition the
            // runtime histogram approximates (telemetry::percentile_reference
            // is its proptest reference).
            p50_us: Some(telemetry::percentile_reference(&sorted, 0.50)),
            p99_us: Some(telemetry::percentile_reference(&sorted, 0.99)),
        }
    }
}

/// Per-stage timings of one (workload size, metric) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchPoint {
    size: String,
    subtasks_min: usize,
    subtasks_max: usize,
    processors: usize,
    metric: String,
    /// Scheduler bus model (`delay` or `contention`). `None` on runs
    /// recorded before the stress point existed, which all used the delay
    /// model (the vendored serde reads an absent field as null).
    bus: Option<String>,
    iterations: usize,
    generate: StageStats,
    distribute: StageStats,
    schedule: StageStats,
}

/// One invocation of this binary.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchRun {
    label: String,
    seed: u64,
    points: Vec<BenchPoint>,
}

/// The committed trajectory: one run per recorded invocation, oldest first.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchFile {
    schema: u32,
    description: String,
    runs: Vec<BenchRun>,
}

impl BenchFile {
    fn empty() -> BenchFile {
        BenchFile {
            schema: 1,
            description: "FEAST pipeline wall-clock trajectory; see README.md \
                          §Performance. Stages are microseconds per run of \
                          generate/distribute/schedule at fixed seeds."
                .to_owned(),
            runs: Vec::new(),
        }
    }
}

/// A workload size under measurement.
struct SizeSpec {
    label: &'static str,
    spec: WorkloadSpec,
    iterations: usize,
}

fn sizes() -> Vec<SizeSpec> {
    let paper = WorkloadSpec::paper(ExecVariation::Mdet);
    vec![
        SizeSpec {
            label: "paper",
            spec: paper.clone(),
            iterations: 32,
        },
        SizeSpec {
            label: "2x",
            spec: paper.clone().with_subtasks(80..=120).with_depth(16..=24),
            iterations: 12,
        },
        SizeSpec {
            label: "4x",
            spec: paper.with_subtasks(160..=240).with_depth(32..=48),
            iterations: 4,
        },
    ]
}

/// The schedule-stage stress point: 4× paper subtasks scheduled on
/// [`STRESS_PROCESSORS`] processors under [`BusModel::Contention`] — every
/// dispatch estimates 32 candidate processors against a mutable bus
/// timeline, the scheduler's worst case.
fn stress_size() -> SizeSpec {
    SizeSpec {
        label: STRESS_LABEL,
        spec: WorkloadSpec::paper(ExecVariation::Mdet)
            .with_subtasks(160..=240)
            .with_depth(32..=48),
        iterations: 6,
    }
}

fn metrics() -> [(&'static str, MetricKind); 4] {
    [
        ("NORM", MetricKind::norm()),
        ("PURE", MetricKind::pure()),
        ("THRES", MetricKind::thres(1.0)),
        ("ADAPT", MetricKind::adapt()),
    ]
}

fn measure(
    size: &SizeSpec,
    metric_label: &str,
    metric: MetricKind,
    iterations: usize,
    processors: usize,
    bus: BusModel,
) -> BenchPoint {
    let platform = Platform::paper(processors).expect("paper platform is valid");
    let slicer = Slicer::new(metric);
    let scheduler = ListScheduler::new().with_bus_model(bus);
    let pinning = Pinning::new();
    // Reused across iterations — the production configuration (the runner
    // holds one workspace per worker thread).
    let mut ws = SchedWorkspace::new();

    let stream = stream_label(size.label.as_bytes());
    let mut gen_us = Vec::with_capacity(iterations);
    let mut dist_us = Vec::with_capacity(iterations);
    let mut sched_us = Vec::with_capacity(iterations);
    for i in 0..iterations {
        let seed = stream_seed(SEED, stream, 0, i as u64);

        let t = Instant::now();
        let graph = generate_seeded(&size.spec, seed).expect("workload spec is valid");
        gen_us.push(t.elapsed().as_micros() as u64);

        let t = Instant::now();
        let assignment = slicer
            .distribute(&graph, &platform)
            .expect("distribution succeeds");
        dist_us.push(t.elapsed().as_micros() as u64);

        let t = Instant::now();
        let schedule = scheduler
            .schedule_with(&graph, &platform, &assignment, &pinning, &mut ws)
            .expect("scheduling succeeds");
        sched_us.push(t.elapsed().as_micros() as u64);
        std::hint::black_box(schedule);
    }

    BenchPoint {
        size: size.label.to_owned(),
        subtasks_min: *size.spec.subtasks.start(),
        subtasks_max: *size.spec.subtasks.end(),
        processors,
        metric: metric_label.to_owned(),
        bus: Some(bus.label().to_owned()),
        iterations,
        generate: StageStats::from_samples(&gen_us),
        distribute: StageStats::from_samples(&dist_us),
        schedule: StageStats::from_samples(&sched_us),
    }
}

/// The delta stress point: each iteration generates one 4× stress graph
/// (THRES metric, [`DELTA_PROCESSORS`] processors, [`BusModel::Delay`]),
/// primes a [`SliceMemo`] ([`Slicer::distribute_traced`]) and a
/// [`SchedWorkspace`] (`schedule_with`), then applies
/// [`DELTA_PERTURBATIONS`] chained single-node WCET tightenings. Every
/// perturbation is solved twice: incrementally
/// ([`Slicer::redistribute`] + [`ListScheduler::repair`], point
/// [`DELTA_LABEL`]) and from scratch (`distribute` + `schedule_with` into
/// a separate workspace, point [`DELTA_FULL_LABEL`]), asserting the
/// incremental assignment and schedule bit-identical to the from-scratch
/// ones. The shared `generate` stats carry the [`GraphDelta::apply`]
/// rebuild cost, paid by both halves.
fn measure_delta(iterations: usize) -> (BenchPoint, BenchPoint) {
    let size = stress_size();
    let platform = Platform::paper(DELTA_PROCESSORS).expect("paper platform is valid");
    let slicer = Slicer::new(MetricKind::thres(1.0));
    let scheduler = ListScheduler::new().with_bus_model(BusModel::Delay);
    let pinning = Pinning::new();
    let mut memo = SliceMemo::new();
    let mut ws = SchedWorkspace::new();
    let mut ws_full = SchedWorkspace::new();

    let stream = stream_label(DELTA_LABEL.as_bytes());
    let samples = iterations * DELTA_PERTURBATIONS;
    let mut apply_us = Vec::with_capacity(samples);
    let mut redist_us = Vec::with_capacity(samples);
    let mut repair_us = Vec::with_capacity(samples);
    let mut full_dist_us = Vec::with_capacity(samples);
    let mut full_sched_us = Vec::with_capacity(samples);
    for i in 0..iterations {
        let seed = stream_seed(SEED, stream, 0, i as u64);
        let mut graph = generate_seeded(&size.spec, seed).expect("workload spec is valid");
        let assignment = slicer
            .distribute_traced(&graph, &platform, &mut memo)
            .expect("distribution succeeds");
        let mut schedule = scheduler
            .schedule_with(&graph, &platform, &assignment, &pinning, &mut ws)
            .expect("scheduling succeeds");

        for k in 0..DELTA_PERTURBATIONS {
            let draw = stream_seed(SEED, stream, 1, (i * DELTA_PERTURBATIONS + k) as u64);
            let id = SubtaskId::new((draw % graph.subtask_count() as u64) as u32);
            let old = graph.subtask(id).wcet().as_i64();
            let bump = 1 + (draw >> 33) as i64 % 3;
            // Tighten only (measurement-based WCET re-estimation), never
            // below one time unit.
            let wcet = (old - bump).max(1);

            let t = Instant::now();
            let applied = GraphDelta::new()
                .set_wcet(id, Time::new(wcet))
                .apply(&graph, &pinning)
                .expect("WCET delta applies");
            apply_us.push(t.elapsed().as_micros() as u64);
            graph = applied.graph;

            let t = Instant::now();
            let redist = slicer
                .redistribute(&graph, &platform, &mut memo)
                .expect("redistribution succeeds");
            redist_us.push(t.elapsed().as_micros() as u64);
            let t = Instant::now();
            let repaired = scheduler
                .repair(
                    &graph,
                    &platform,
                    &redist.assignment,
                    &pinning,
                    &schedule,
                    &mut ws,
                )
                .expect("repair succeeds");
            repair_us.push(t.elapsed().as_micros() as u64);

            let t = Instant::now();
            let full_assignment = slicer
                .distribute(&graph, &platform)
                .expect("distribution succeeds");
            full_dist_us.push(t.elapsed().as_micros() as u64);
            let t = Instant::now();
            let full_schedule = scheduler
                .schedule_with(&graph, &platform, &full_assignment, &pinning, &mut ws_full)
                .expect("scheduling succeeds");
            full_sched_us.push(t.elapsed().as_micros() as u64);

            assert!(
                !redist.stats.fell_back,
                "single-node WCET delta must not fall back"
            );
            assert_eq!(
                redist.assignment, full_assignment,
                "redistribute must be bit-identical to distribute"
            );
            assert_eq!(
                repaired.schedule, full_schedule,
                "repair must be bit-identical to schedule_with"
            );
            schedule = repaired.schedule;
        }
    }

    let point = |label: &str, dist: &[u64], sched: &[u64]| BenchPoint {
        size: label.to_owned(),
        subtasks_min: *size.spec.subtasks.start(),
        subtasks_max: *size.spec.subtasks.end(),
        processors: DELTA_PROCESSORS,
        metric: "THRES".to_owned(),
        bus: Some(BusModel::Delay.label().to_owned()),
        iterations: samples,
        generate: StageStats::from_samples(&apply_us),
        distribute: StageStats::from_samples(dist),
        schedule: StageStats::from_samples(sched),
    };
    (
        point(DELTA_LABEL, &redist_us, &repair_us),
        point(DELTA_FULL_LABEL, &full_dist_us, &full_sched_us),
    )
}

/// End-to-end (distribute + schedule mean) speedup of the incremental
/// delta point over its from-scratch pair, if both points are present.
fn delta_speedup(run: &BenchRun) -> Option<f64> {
    let total = |label: &str| {
        run.points
            .iter()
            .find(|p| p.size == label)
            .map(|p| p.distribute.mean_us + p.schedule.mean_us)
    };
    Some(total(DELTA_FULL_LABEL)? / total(DELTA_LABEL)?)
}

/// The p50 counterpart of [`delta_speedup`] — the typical-delta ratio,
/// reported for visibility but not floored (per-stage medians, so the
/// bimodal corridor/off-corridor mix is summarised, not hidden).
fn delta_speedup_p50(run: &BenchRun) -> Option<f64> {
    let total = |label: &str| {
        let p = run.points.iter().find(|p| p.size == label)?;
        Some((p.distribute.p50_us? + p.schedule.p50_us?) as f64)
    };
    Some(total(DELTA_FULL_LABEL)? / total(DELTA_LABEL)?)
}

/// The CI bench guard: compares this run's schedule-stage means at the
/// stress and incremental-delta points against the `baseline` run's,
/// failing on a regression beyond `max_regression_pct`. Only those points
/// are guarded — they carry the largest absolute schedule times, so their
/// ratio is the most stable signal across machines. When the run carries
/// both delta points, the guard additionally enforces the
/// [`DELTA_SPEEDUP_FLOOR`] on the incremental-vs-full speedup.
fn guard_schedule_stage(
    current: &BenchRun,
    baseline: &BenchRun,
    max_regression_pct: f64,
) -> Result<(), String> {
    let guarded = |size: &str| size == STRESS_LABEL || size == DELTA_LABEL;
    let find = |run: &BenchRun, size: &str, metric: &str| {
        run.points
            .iter()
            .find(|p| p.size == size && p.metric == metric)
            .map(|p| p.schedule.mean_us)
    };
    let mut checked = 0usize;
    for point in baseline.points.iter().filter(|p| guarded(&p.size)) {
        let Some(current_mean) = find(current, &point.size, &point.metric) else {
            continue;
        };
        let baseline_mean = point.schedule.mean_us;
        let limit = baseline_mean * (1.0 + max_regression_pct / 100.0);
        eprintln!(
            "guard: {} × {:<5} schedule mean {:>9.1}us (baseline {:>9.1}us, limit {:>9.1}us)",
            point.size, point.metric, current_mean, baseline_mean, limit
        );
        if current_mean > limit {
            return Err(format!(
                "schedule-stage regression at the {} point ({}): \
                 {current_mean:.1}us vs baseline {baseline_mean:.1}us \
                 (> {max_regression_pct}% over)",
                point.size, point.metric
            ));
        }
        checked += 1;
    }
    if checked == 0 {
        return Err(format!(
            "baseline run `{}` has no `{STRESS_LABEL}`/`{DELTA_LABEL}` points matching this run",
            baseline.label
        ));
    }
    if let Some(speedup) = delta_speedup(current) {
        let p50 = delta_speedup_p50(current);
        let p50_text = p50
            .map(|s| format!(", p50 {s:.1}x (floor {DELTA_P50_SPEEDUP_FLOOR}x)"))
            .unwrap_or_default();
        eprintln!(
            "guard: delta speedup mean {speedup:.1}x (floor {DELTA_SPEEDUP_FLOOR}x){p50_text}"
        );
        if speedup < DELTA_SPEEDUP_FLOOR {
            return Err(format!(
                "incremental delta mean speedup {speedup:.1}x fell below the \
                 {DELTA_SPEEDUP_FLOOR}x floor"
            ));
        }
        if let Some(p50) = p50 {
            if p50 < DELTA_P50_SPEEDUP_FLOOR {
                return Err(format!(
                    "incremental delta p50 speedup {p50:.1}x fell below the \
                     {DELTA_P50_SPEEDUP_FLOOR}x floor"
                ));
            }
        }
    }
    Ok(())
}

/// Iterations of the observatory overhead gate: the per-iteration cost is
/// two stress-point schedules (~1 ms total), so a far larger count than
/// the recorded stress point is affordable and stabilises the paired
/// median the gate compares.
const OVERHEAD_ITERATIONS: usize = 200;

/// The observatory overhead gate: schedules the stress workload twice per
/// iteration over identical seeds — once bare, once wrapped in the exact
/// per-replication accounting the runner performs (three stage-histogram
/// records, schedule/audit counters, a progress-cell record and a gated
/// `metrics.json` write attempt, with a miss-log attached to the
/// workspace). A/B order alternates every iteration so cache warming
/// cannot favour either side.
///
/// The gate statistic is the **median of order-balanced paired
/// differences**, normalised by the bare median: each iteration schedules
/// the same graph twice, so the pairwise difference isolates the
/// accounting cost; averaging each adjacent bare-first/observed-first
/// iteration pair cancels run-order bias (frequency drift, cache state)
/// per sample, and the median discards the preemption outliers that make
/// mean ratios flake on shared runners. The recorded points still carry
/// the means for the trajectory file.
///
/// Returns the two measured points (`stress-bare`, `stress-observed`) and
/// the overhead in percent; `Err` if it exceeds `max_overhead_pct`.
fn overhead_gate(
    iterations: usize,
    max_overhead_pct: f64,
) -> Result<(BenchPoint, BenchPoint, f64), String> {
    let size = stress_size();
    let platform = Platform::paper(STRESS_PROCESSORS).expect("paper platform is valid");
    let slicer = Slicer::new(MetricKind::adapt());
    let scheduler = ListScheduler::new().with_bus_model(BusModel::Contention);
    let pinning = Pinning::new();
    let mut ws_bare = SchedWorkspace::new();
    let mut ws_observed = SchedWorkspace::new();
    ws_observed.set_miss_log(Some(Arc::new(MissLog::new(Runner::MISS_WARN_LIMIT))));

    let registry = telemetry::global();
    let progress = ProgressTracker::new();
    progress.configure("overhead-gate", 0, 1, iterations as u64, 0);
    let metrics_path = std::env::temp_dir().join(format!(
        "bench-overhead-{}.metrics.json",
        std::process::id()
    ));
    let writer = MetricsWriter::new(&metrics_path, Runner::METRICS_WRITE_INTERVAL);

    let stream = stream_label(b"overhead");
    let mut gen_us = Vec::with_capacity(iterations);
    let mut dist_us = Vec::with_capacity(iterations);
    let mut bare_us = Vec::with_capacity(iterations);
    let mut observed_us = Vec::with_capacity(iterations);
    for i in 0..iterations {
        let seed = stream_seed(SEED, stream, 0, i as u64);

        let t = Instant::now();
        let graph = generate_seeded(&size.spec, seed).expect("workload spec is valid");
        gen_us.push(t.elapsed().as_micros() as u64);

        let t = Instant::now();
        let assignment = slicer
            .distribute(&graph, &platform)
            .expect("distribution succeeds");
        let distribute_elapsed = t.elapsed();
        dist_us.push(distribute_elapsed.as_micros() as u64);

        let mut bare = || {
            let t = Instant::now();
            let schedule = scheduler
                .schedule_with(&graph, &platform, &assignment, &pinning, &mut ws_bare)
                .expect("scheduling succeeds");
            std::hint::black_box(schedule);
            bare_us.push(t.elapsed().as_micros() as u64);
        };
        let mut observed = || {
            let t = Instant::now();
            let schedule = scheduler
                .schedule_with(&graph, &platform, &assignment, &pinning, &mut ws_observed)
                .expect("scheduling succeeds");
            let schedule_elapsed = t.elapsed();
            registry.record_stage(Stage::Distribute, distribute_elapsed);
            registry.record_stage(Stage::Schedule, schedule_elapsed);
            registry.record_stage(Stage::Audit, schedule_elapsed);
            registry.count_schedule(true, 0);
            registry.count_audit(0, 0);
            progress.record_cell(true, 0);
            writer.maybe_write(&progress, || registry.snapshot());
            std::hint::black_box(schedule);
            observed_us.push(t.elapsed().as_micros() as u64);
        };
        if i % 2 == 0 {
            bare();
            observed();
        } else {
            observed();
            bare();
        }
    }
    std::fs::remove_file(&metrics_path).ok();

    let point = |label: &str, samples: &[u64]| BenchPoint {
        size: label.to_owned(),
        subtasks_min: *size.spec.subtasks.start(),
        subtasks_max: *size.spec.subtasks.end(),
        processors: STRESS_PROCESSORS,
        metric: "ADAPT".to_owned(),
        bus: Some(BusModel::Contention.label().to_owned()),
        iterations,
        generate: StageStats::from_samples(&gen_us),
        distribute: StageStats::from_samples(&dist_us),
        schedule: StageStats::from_samples(samples),
    };
    let bare_point = point("stress-bare", &bare_us);
    let observed_point = point("stress-observed", &observed_us);

    let diffs: Vec<f64> = bare_us
        .iter()
        .zip(&observed_us)
        .map(|(&b, &o)| o as f64 - b as f64)
        .collect();
    // Fold adjacent iterations (bare-first, then observed-first) into one
    // order-balanced sample each; a trailing odd iteration is dropped.
    let mut balanced: Vec<f64> = diffs.chunks_exact(2).map(|p| (p[0] + p[1]) / 2.0).collect();
    balanced.sort_unstable_by(f64::total_cmp);
    let median_diff = balanced[balanced.len() / 2];
    let bare_p50 = bare_point
        .schedule
        .p50_us
        .expect("gate runs at least two iterations") as f64;
    let overhead_pct = median_diff / bare_p50 * 100.0;
    eprintln!(
        "overhead gate: bare p50 {bare_p50:.0}us, paired median diff {median_diff:+.0}us \
         ({overhead_pct:+.2}%, budget {max_overhead_pct}%; means: bare {:.1}us, observed {:.1}us)",
        bare_point.schedule.mean_us, observed_point.schedule.mean_us,
    );
    if overhead_pct > max_overhead_pct {
        return Err(format!(
            "observatory overhead {overhead_pct:.2}% exceeds the {max_overhead_pct}% budget \
             (paired median diff {median_diff:+.0}us over bare p50 {bare_p50:.0}us)"
        ));
    }
    Ok((bare_point, observed_point, overhead_pct))
}

struct Args {
    label: String,
    iterations: Option<usize>,
    out: String,
    fresh: bool,
    guard: Option<String>,
    baseline: Option<String>,
    guard_pct: f64,
    overhead_gate: bool,
    overhead_attempts: usize,
    overhead_pct: f64,
}

fn parse_args() -> Args {
    let mut args = Args {
        label: "run".to_owned(),
        iterations: None,
        out: "BENCH_pipeline.json".to_owned(),
        fresh: false,
        guard: None,
        baseline: None,
        guard_pct: 25.0,
        overhead_gate: false,
        overhead_pct: 2.0,
        overhead_attempts: 3,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--label" => args.label = value("--label"),
            "--iterations" => {
                args.iterations = Some(
                    value("--iterations")
                        .parse()
                        .expect("--iterations takes a positive integer"),
                )
            }
            "--out" => args.out = value("--out"),
            "--fresh" => args.fresh = true,
            "--guard" => args.guard = Some(value("--guard")),
            "--baseline" => args.baseline = Some(value("--baseline")),
            "--guard-pct" => {
                args.guard_pct = value("--guard-pct")
                    .parse()
                    .expect("--guard-pct takes a number (percent)")
            }
            "--overhead-gate" => args.overhead_gate = true,
            "--overhead-pct" => {
                args.overhead_pct = value("--overhead-pct")
                    .parse()
                    .expect("--overhead-pct takes a number (percent)")
            }
            "--overhead-attempts" => {
                args.overhead_attempts = value("--overhead-attempts")
                    .parse()
                    .expect("--overhead-attempts takes a positive integer")
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench [--label NAME] [--iterations N] [--out PATH] [--fresh] \
                     [--guard LABEL] [--baseline PATH] [--guard-pct F] \
                     [--overhead-gate] [--overhead-pct F] [--overhead-attempts N]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument `{other}` (try --help)"),
        }
    }
    args
}

fn main() {
    let args = parse_args();

    let mut file = if args.fresh {
        BenchFile::empty()
    } else {
        std::fs::read_to_string(&args.out)
            .ok()
            .and_then(|text| serde_json::from_str(&text).ok())
            .unwrap_or_else(BenchFile::empty)
    };

    let mut run = BenchRun {
        label: args.label,
        seed: SEED,
        points: Vec::new(),
    };
    let record = |point: BenchPoint, run: &mut BenchRun| {
        eprintln!(
            "{:>6} × {:<5} gen {:>9.1}us  distribute {:>11.1}us  schedule {:>9.1}us  ({} iters, {} procs, {})",
            point.size,
            point.metric,
            point.generate.mean_us,
            point.distribute.mean_us,
            point.schedule.mean_us,
            point.iterations,
            point.processors,
            point.bus.as_deref().unwrap_or("delay"),
        );
        run.points.push(point);
    };
    for size in sizes() {
        let iterations = args.iterations.unwrap_or(size.iterations).max(1);
        for (label, metric) in metrics() {
            let point = measure(
                &size,
                label,
                metric,
                iterations,
                PROCESSORS,
                BusModel::Delay,
            );
            record(point, &mut run);
        }
    }
    // The schedule-stage stress point the CI bench guard watches: one
    // metric is enough — the schedule stage is metric-independent once the
    // assignment exists, and ADAPT is the headline technique.
    let stress = stress_size();
    let iterations = args.iterations.unwrap_or(stress.iterations).max(1);
    let point = measure(
        &stress,
        "ADAPT",
        MetricKind::adapt(),
        iterations,
        STRESS_PROCESSORS,
        BusModel::Contention,
    );
    record(point, &mut run);

    // The delta stress point: K single-node WCET perturbations per stress
    // graph, solved incrementally and from scratch (asserted
    // bit-identical), recorded as a pair of points whose ratio is the
    // committed incremental speedup.
    let delta_graphs = args.iterations.unwrap_or(4).max(1);
    let (delta_point, delta_full_point) = measure_delta(delta_graphs);
    record(delta_point, &mut run);
    record(delta_full_point, &mut run);
    if let Some(speedup) = delta_speedup(&run) {
        let p50 = delta_speedup_p50(&run)
            .map(|s| format!(", p50 {s:.1}x"))
            .unwrap_or_default();
        eprintln!(
            "delta speedup: {speedup:.1}x{p50} (incremental vs from-scratch, distribute+schedule)"
        );
    }

    if let Some(baseline_label) = &args.guard {
        let baseline_path = args.baseline.as_ref().unwrap_or(&args.out);
        let baseline_file: BenchFile = std::fs::read_to_string(baseline_path)
            .ok()
            .and_then(|text| serde_json::from_str(&text).ok())
            .unwrap_or_else(|| panic!("cannot read guard baseline {baseline_path}"));
        let baseline = baseline_file
            .runs
            .iter()
            .rev()
            .find(|r| &r.label == baseline_label)
            .unwrap_or_else(|| panic!("no run labelled `{baseline_label}` in {baseline_path}"));
        if let Err(message) = guard_schedule_stage(&run, baseline, args.guard_pct) {
            eprintln!("bench guard FAILED: {message}");
            std::process::exit(2);
        }
        eprintln!("bench guard passed against `{baseline_label}`");
    }

    if args.overhead_gate {
        let iterations = args.iterations.unwrap_or(OVERHEAD_ITERATIONS).max(2);
        let attempts = args.overhead_attempts.max(1);
        let mut outcome = Err(String::new());
        for attempt in 1..=attempts {
            outcome = overhead_gate(iterations, args.overhead_pct);
            match &outcome {
                // Noise only inflates the paired difference: one attempt
                // under budget proves the true cost is under budget.
                Ok(_) => break,
                Err(message) => {
                    eprintln!("overhead gate attempt {attempt}/{attempts}: {message}")
                }
            }
        }
        match outcome {
            Ok((bare, observed, _)) => {
                record(bare, &mut run);
                record(observed, &mut run);
            }
            Err(message) => {
                eprintln!("overhead gate FAILED: {message}");
                std::process::exit(2);
            }
        }
    }

    file.runs.push(run);

    let json = serde_json::to_string_pretty(&file).expect("serialization cannot fail");
    std::fs::write(&args.out, json + "\n")
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", args.out));
    eprintln!("wrote {}", args.out);
}
