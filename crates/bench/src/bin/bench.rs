//! Fixed-seed, fixed-iteration wall-clock benchmark of the FEAST pipeline.
//!
//! Measures the three pipeline stages — workload **generation**, deadline
//! **distribution** and list **scheduling** — for every paper metric at the
//! paper workload size and at 2× / 4× that size, then appends the results
//! to `BENCH_pipeline.json` so the repository carries a committed
//! performance trajectory that every future change extends.
//!
//! Unlike the Criterion benches (`cargo bench -p bench`), this binary uses
//! plain `Instant` timing with a deterministic workload sequence, so its
//! output is a small, diffable JSON file rather than an HTML report.
//!
//! ```text
//! cargo run --release -p bench --bin bench -- [--label NAME] \
//!     [--iterations N] [--out PATH] [--fresh]
//! ```
//!
//! * `--label NAME`       tag for this run (default `run`);
//! * `--iterations N`     override the per-size iteration counts;
//! * `--out PATH`         output file (default `BENCH_pipeline.json`);
//! * `--fresh`            overwrite instead of appending to existing runs.

use std::time::Instant;

use platform::{Pinning, Platform};
use sched::ListScheduler;
use serde::{Deserialize, Serialize};
use slicing::{MetricKind, Slicer};
use taskgraph::gen::{generate_seeded, stream_label, stream_seed, ExecVariation, WorkloadSpec};

/// Base seed for workload generation; iteration `i` draws from the seed
/// stream `stream_seed(SEED, size stream, 0, i)`, so the same graphs recur
/// across metrics and runs (paired measurement) while staying decorrelated
/// across workload sizes.
const SEED: u64 = 0x000F_EA57_BE5C;

/// Processor count used for the distribute and schedule stages.
const PROCESSORS: usize = 8;

/// Aggregate wall-clock statistics of one pipeline stage.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct StageStats {
    total_us: u64,
    mean_us: f64,
    min_us: u64,
}

impl StageStats {
    fn from_samples(samples: &[u64]) -> StageStats {
        let total: u64 = samples.iter().sum();
        StageStats {
            total_us: total,
            mean_us: total as f64 / samples.len() as f64,
            min_us: samples.iter().copied().min().unwrap_or(0),
        }
    }
}

/// Per-stage timings of one (workload size, metric) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchPoint {
    size: String,
    subtasks_min: usize,
    subtasks_max: usize,
    processors: usize,
    metric: String,
    iterations: usize,
    generate: StageStats,
    distribute: StageStats,
    schedule: StageStats,
}

/// One invocation of this binary.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchRun {
    label: String,
    seed: u64,
    points: Vec<BenchPoint>,
}

/// The committed trajectory: one run per recorded invocation, oldest first.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchFile {
    schema: u32,
    description: String,
    runs: Vec<BenchRun>,
}

impl BenchFile {
    fn empty() -> BenchFile {
        BenchFile {
            schema: 1,
            description: "FEAST pipeline wall-clock trajectory; see README.md \
                          §Performance. Stages are microseconds per run of \
                          generate/distribute/schedule at fixed seeds."
                .to_owned(),
            runs: Vec::new(),
        }
    }
}

/// A workload size under measurement.
struct SizeSpec {
    label: &'static str,
    spec: WorkloadSpec,
    iterations: usize,
}

fn sizes() -> Vec<SizeSpec> {
    let paper = WorkloadSpec::paper(ExecVariation::Mdet);
    vec![
        SizeSpec {
            label: "paper",
            spec: paper.clone(),
            iterations: 32,
        },
        SizeSpec {
            label: "2x",
            spec: paper.clone().with_subtasks(80..=120).with_depth(16..=24),
            iterations: 12,
        },
        SizeSpec {
            label: "4x",
            spec: paper.with_subtasks(160..=240).with_depth(32..=48),
            iterations: 4,
        },
    ]
}

fn metrics() -> [(&'static str, MetricKind); 4] {
    [
        ("NORM", MetricKind::norm()),
        ("PURE", MetricKind::pure()),
        ("THRES", MetricKind::thres(1.0)),
        ("ADAPT", MetricKind::adapt()),
    ]
}

fn measure(
    size: &SizeSpec,
    metric_label: &str,
    metric: MetricKind,
    iterations: usize,
) -> BenchPoint {
    let platform = Platform::paper(PROCESSORS).expect("paper platform is valid");
    let slicer = Slicer::new(metric);
    let scheduler = ListScheduler::new();
    let pinning = Pinning::new();

    let stream = stream_label(size.label.as_bytes());
    let mut gen_us = Vec::with_capacity(iterations);
    let mut dist_us = Vec::with_capacity(iterations);
    let mut sched_us = Vec::with_capacity(iterations);
    for i in 0..iterations {
        let seed = stream_seed(SEED, stream, 0, i as u64);

        let t = Instant::now();
        let graph = generate_seeded(&size.spec, seed).expect("workload spec is valid");
        gen_us.push(t.elapsed().as_micros() as u64);

        let t = Instant::now();
        let assignment = slicer
            .distribute(&graph, &platform)
            .expect("distribution succeeds");
        dist_us.push(t.elapsed().as_micros() as u64);

        let t = Instant::now();
        let schedule = scheduler
            .schedule(&graph, &platform, &assignment, &pinning)
            .expect("scheduling succeeds");
        sched_us.push(t.elapsed().as_micros() as u64);
        std::hint::black_box(schedule);
    }

    BenchPoint {
        size: size.label.to_owned(),
        subtasks_min: *size.spec.subtasks.start(),
        subtasks_max: *size.spec.subtasks.end(),
        processors: PROCESSORS,
        metric: metric_label.to_owned(),
        iterations,
        generate: StageStats::from_samples(&gen_us),
        distribute: StageStats::from_samples(&dist_us),
        schedule: StageStats::from_samples(&sched_us),
    }
}

struct Args {
    label: String,
    iterations: Option<usize>,
    out: String,
    fresh: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        label: "run".to_owned(),
        iterations: None,
        out: "BENCH_pipeline.json".to_owned(),
        fresh: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--label" => args.label = value("--label"),
            "--iterations" => {
                args.iterations = Some(
                    value("--iterations")
                        .parse()
                        .expect("--iterations takes a positive integer"),
                )
            }
            "--out" => args.out = value("--out"),
            "--fresh" => args.fresh = true,
            "--help" | "-h" => {
                eprintln!("usage: bench [--label NAME] [--iterations N] [--out PATH] [--fresh]");
                std::process::exit(0);
            }
            other => panic!("unknown argument `{other}` (try --help)"),
        }
    }
    args
}

fn main() {
    let args = parse_args();

    let mut file = if args.fresh {
        BenchFile::empty()
    } else {
        std::fs::read_to_string(&args.out)
            .ok()
            .and_then(|text| serde_json::from_str(&text).ok())
            .unwrap_or_else(BenchFile::empty)
    };

    let mut run = BenchRun {
        label: args.label,
        seed: SEED,
        points: Vec::new(),
    };
    for size in sizes() {
        let iterations = args.iterations.unwrap_or(size.iterations).max(1);
        for (label, metric) in metrics() {
            let point = measure(&size, label, metric, iterations);
            eprintln!(
                "{:>5} × {:<5} gen {:>9.1}us  distribute {:>11.1}us  schedule {:>9.1}us  ({} iters)",
                point.size,
                point.metric,
                point.generate.mean_us,
                point.distribute.mean_us,
                point.schedule.mean_us,
                point.iterations,
            );
            run.points.push(point);
        }
    }
    file.runs.push(run);

    let json = serde_json::to_string_pretty(&file).expect("serialization cannot fail");
    std::fs::write(&args.out, json + "\n")
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", args.out));
    eprintln!("wrote {}", args.out);
}
