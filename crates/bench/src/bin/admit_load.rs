//! Load test of the online admission service (`feast::admission`).
//!
//! Generates a deterministic stream of admission requests from the shared
//! bench seed, pushes them through an [`AdmissionService`] as fast as the
//! bounded queue accepts them, and records sustained throughput
//! (admissions decided per second) plus the coordinator's decision-latency
//! distribution into `BENCH_admission.json` — the committed load
//! trajectory every future change extends.
//!
//! Every run re-verifies the tentpole's determinism contract before
//! recording anything: the service's transcript is replayed through a
//! fresh sequential [`AdmissionController`] and must match bit for bit
//! (verdicts, final state digest, resident count). A run that fails
//! replay exits non-zero and records nothing.
//!
//! ```text
//! cargo run --release -p bench --bin admit-load -- [--label NAME] \
//!     [--requests N] [--workers N] [--size P] [--amend-every K] \
//!     [--out PATH] [--fresh] [--guard] [--floor F] [--metrics PATH] \
//!     [--durable] [--wal PATH] [--recover PATH] [--budget-us N] \
//!     [--fault SPEC] [--template-pool N] [--infeasible-frac F] \
//!     [--slice-cache on|off] [--eviction oldest|lowest]
//! ```
//!
//! * `--label NAME`    tag for this run (default `run`);
//! * `--requests N`    admission requests to submit (default 4096);
//! * `--workers N`     slicer worker threads (default 4);
//! * `--size P`        platform processors (default 8, the paper size);
//! * `--amend-every K` submit an amendment of the latest admit after every
//!   K admits (default 16; 0 disables amendments);
//! * `--trials N`      run the stream N times and record the fastest trial
//!   (every trial is replay-verified; default 1);
//! * `--out PATH`      trajectory file (default `BENCH_admission.json`);
//! * `--fresh`         overwrite instead of appending;
//! * `--guard`         exit non-zero unless throughput ≥ the floor
//!   (the CI admission guard);
//! * `--floor F`       guard floor in admissions/second (default 10000);
//! * `--metrics PATH`  also write a live `metrics.json` (progress +
//!   telemetry) while the run drains;
//! * `--durable`       seal every verdict to a write-ahead log before it
//!   returns, and re-verify crash recovery after every trial;
//! * `--wal PATH`      the write-ahead log path (default
//!   `admit_load.wal.jsonl`; implies `--durable`);
//! * `--recover PATH`  standalone mode: recover the WAL at PATH, verify
//!   bit-identical replay, report, and exit (0 ok / 2 divergence);
//! * `--budget-us N`   decision budget in µs — requests that out-wait it
//!   are shed before slicing (with `--guard`, also bounds the non-shed
//!   p99 sojourn);
//! * `--fault SPEC`    deterministic fault injection, `site:rate[:attempts]`
//!   (only fires in `--features fault-inject` builds; repeatable);
//! * `--template-pool N` draw admit graphs from a pool of N seed-derived
//!   templates instead of a fresh graph per request (exercises the
//!   cross-request slice cache; 0 = fresh graphs, the default);
//! * `--infeasible-frac F` make fraction F (0..1) of admits provably
//!   infeasible chains (exercises the feasibility pre-filter; default 0);
//! * `--slice-cache on|off` enable the cross-request slice cache
//!   (default on; `off` is the cache-equivalence baseline);
//! * `--prefilter on|off` enable the feasibility pre-filter (default on);
//! * `--eviction oldest|lowest` capacity-pressure eviction policy
//!   (default oldest = `OldestFirst`; lowest = `LowestUtilization`).

use std::sync::Arc;
use std::time::{Duration, Instant};

use feast::telemetry::{self, StageSnapshot};
use feast::{
    AdmissionController, AdmissionLog, AdmissionService, AdmitConfig, AdmitError, AdmitOutcome,
    AdmitRequest, FaultPlan, FaultSpec, LowestUtilization, MetricsWriter, OldestFirst,
    ProgressTracker, Refusal, Runner, Scenario,
};
use serde::{Deserialize, Serialize};
use slicing::{CommEstimate, GraphDelta, MetricKind};
use taskgraph::gen::{generate_seeded, stream_label, stream_seed, ExecVariation, WorkloadSpec};
use taskgraph::{Subtask, SubtaskId, TaskGraph, TaskGraphBuilder, Time};

/// Shared bench seed (same as `bench.rs`): request `i` draws its workload
/// from `stream_seed(SEED, admission stream, size, i)`, so the request
/// stream is identical across runs and machines.
const SEED: u64 = 0x000F_EA57_BE5C;

/// Decision-latency statistics, copied from the telemetry registry's
/// `admission` histogram delta for this run (percentiles are within one
/// log2 bucket of the exact order statistic).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct LatencyStats {
    count: u64,
    mean_us: u64,
    p50_us: u64,
    p90_us: u64,
    p99_us: u64,
    max_us: u64,
}

impl LatencyStats {
    fn from_snapshot(snap: &StageSnapshot) -> LatencyStats {
        LatencyStats {
            count: snap.count,
            mean_us: snap.mean_us,
            p50_us: snap.p50_us,
            p90_us: snap.p90_us,
            p99_us: snap.p99_us,
            max_us: snap.max_us,
        }
    }
}

/// One measured service run.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct LoadPoint {
    processors: usize,
    workers: usize,
    queue_depth: usize,
    capacity: usize,
    amend_every: usize,
    /// Mean origin advance between admits (time units); sets the
    /// steady-state residency the trials schedule against.
    stride: i64,
    /// Trials this point is the best of (every trial replay-verified; the
    /// fastest is recorded, being the least noise-contaminated).
    trials: usize,
    /// Requests submitted (admits + amends; every one was accepted by the
    /// queue, retrying on backpressure).
    requests: usize,
    admitted: usize,
    rejected: usize,
    /// Requests answered with a typed refusal (e.g. amendment of an
    /// already retired resident) — still decisions, still replayed.
    /// Pre-filter refusals are counted separately in `prefilter_rejects`,
    /// so `prefilter_rejects + admitted + rejected + errors + shed +
    /// failed == requests`.
    errors: usize,
    /// Requests refused by the O(V+E) feasibility pre-filter before any
    /// slicing ran (a deterministic refusal; disjoint from `errors`).
    #[serde(default)]
    prefilter_rejects: usize,
    /// Template pool this run drew admit graphs from (0 = a fresh graph
    /// per request).
    #[serde(default)]
    template_pool: usize,
    /// Fraction of admits built provably infeasible (pre-filter fodder).
    #[serde(default)]
    infeasible_frac: f64,
    /// Cross-request slice cache capacity in force (0 = cache off;
    /// old points predate the cache and read 0).
    #[serde(default)]
    slice_cache: usize,
    /// Capacity-pressure eviction policy (empty on old points =
    /// oldest-first, the only policy that existed).
    #[serde(default)]
    eviction: String,
    /// Residents evicted under capacity pressure during the recorded
    /// trial (telemetry delta).
    #[serde(default)]
    evicted: u64,
    /// Requests shed over the decision budget (environmental outcomes;
    /// replayed verbatim, never trialed).
    #[serde(default)]
    shed: usize,
    /// Requests lost to supervised worker failures (environmental; the
    /// worker was respawned and the stream continued).
    #[serde(default)]
    failed: usize,
    /// Submissions refused by the bounded queue before eventually landing
    /// (backpressure retries; not counted in `requests`).
    queue_retries: usize,
    elapsed_ms: f64,
    /// Decisions per second of wall clock, submit of the first request to
    /// drained shutdown.
    admissions_per_sec: f64,
    /// Coordinator decision latency (trial + commit, excluding queueing
    /// and parallel slicing).
    latency: LatencyStats,
    /// End-to-end sojourn of non-shed, non-failed requests: submit to
    /// concluded verdict, including queueing and slicing.
    #[serde(default)]
    sojourn: Option<LatencyStats>,
    /// The determinism contract held: sequential replay of the transcript
    /// reproduced every verdict and the final state digest bit for bit.
    replay_verified: bool,
    /// This run sealed every verdict to a write-ahead log before
    /// returning it.
    #[serde(default)]
    durable: bool,
    /// In durable mode: sealed decisions recovered (and digest-verified)
    /// from the WAL after the run.
    #[serde(default)]
    wal_recovered: Option<usize>,
}

/// One invocation of this binary.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct LoadRun {
    label: String,
    seed: u64,
    points: Vec<LoadPoint>,
}

/// The committed trajectory, oldest run first.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct LoadFile {
    schema: u32,
    description: String,
    runs: Vec<LoadRun>,
}

impl LoadFile {
    fn empty() -> LoadFile {
        LoadFile {
            schema: 1,
            description: "Admission-service load trajectory; see README.md \
                          §Admission control. Throughput is decisions/second \
                          through the concurrent service; latency is the \
                          coordinator's per-decision trial+commit time in \
                          microseconds."
                .to_owned(),
            runs: Vec::new(),
        }
    }
}

/// A provably infeasible two-subtask chain: 100 + 100 time units of
/// serial WCET against an end-to-end deadline of 50, so the pre-filter's
/// chain bound (and, without the pre-filter, the full slice + trial path)
/// must refuse it. `salt` perturbs the WCETs so the infeasible stream is
/// not one endlessly repeated graph.
fn infeasible_chain(salt: u64) -> TaskGraph {
    let mut b = TaskGraphBuilder::new();
    let head =
        b.add_subtask(Subtask::new(Time::new(100 + (salt % 7) as i64)).released_at(Time::ZERO));
    let tail = b.add_subtask(Subtask::new(Time::new(100)).due_at(Time::new(50)));
    b.add_edge(head, tail, 1).expect("two-node chain edge");
    b.build().expect("infeasible chain still builds")
}

/// Builds the deterministic request stream: paper workloads at origins
/// that advance by a seed-derived stride around `stride`, with an
/// amendment of the latest admit every `amend_every` admits. The stride
/// sets the steady-state residency (how many committed graphs a trial
/// schedules against) and is therefore the load axis of this bench.
///
/// `template_pool` > 0 draws every feasible admit from a pool of that
/// many seed-derived template graphs (the templated-workload regime the
/// cross-request slice cache targets); `infeasible_frac` replaces that
/// fraction of admits with [`infeasible_chain`]s for the pre-filter.
fn request_stream(
    count: usize,
    size: usize,
    amend_every: usize,
    stride: i64,
    template_pool: usize,
    infeasible_frac: f64,
) -> Vec<AdmitRequest> {
    let stream = stream_label(b"admission");
    let templates: Vec<Arc<TaskGraph>> = (0..template_pool)
        .map(|slot| {
            Arc::new(
                (0..16)
                    .find_map(|attempt| {
                        generate_seeded(
                            &WorkloadSpec::paper(ExecVariation::Mdet),
                            stream_seed(
                                SEED,
                                stream_label(b"admission-template"),
                                size as u64,
                                slot as u64,
                            )
                            .wrapping_add(attempt),
                        )
                        .ok()
                    })
                    .expect("a paper workload generates within 16 seed attempts"),
            )
        })
        .collect();
    let infeasible_per_mille = (infeasible_frac.clamp(0.0, 1.0) * 1000.0) as u64;
    let mut requests = Vec::with_capacity(count);
    let mut origin = 0i64;
    let mut admits = 0u64;
    let mut last_admit: Option<(u64, Arc<TaskGraph>)> = None;
    while requests.len() < count {
        let draw = stream_seed(SEED, stream, size as u64, requests.len() as u64);
        let amend_due = amend_every > 0 && admits > 0 && admits.is_multiple_of(amend_every as u64);
        if amend_due {
            if let Some((id, graph)) = &last_admit {
                // Tighten one WCET of the latest admit — the repair fast
                // path's home turf (it is still the newest commit unless a
                // retirement intervened, which the service handles too).
                let subtask = SubtaskId::new((draw % graph.subtask_count() as u64) as u32);
                let old = graph.subtask(subtask).wcet().as_i64();
                let wcet = (old - 1 - (draw >> 33) as i64 % 3).max(1);
                requests.push(AdmitRequest::Amend {
                    id: *id,
                    delta: GraphDelta::new().set_wcet(subtask, Time::new(wcet)),
                });
                admits += 1; // arm the next window
                continue;
            }
        }
        // A seed-derived slice of the stream is provably infeasible: the
        // pre-filter refuses these before slicing, and they are never
        // amended (they hold no residency).
        if infeasible_per_mille > 0 && (draw >> 17) % 1000 < infeasible_per_mille {
            origin += stride / 5 + (draw % (stride as u64 * 2).max(1)) as i64;
            requests.push(AdmitRequest::Admit {
                id: admits,
                graph: Arc::new(infeasible_chain(draw)),
                origin: Time::new(origin),
            });
            admits += 1;
            continue;
        }
        let graph = if templates.is_empty() {
            // Workload generation can reject a stream; walk to the next
            // one, as the engine does.
            Arc::new(
                (0..16)
                    .find_map(|attempt| {
                        generate_seeded(
                            &WorkloadSpec::paper(ExecVariation::Mdet),
                            draw.wrapping_add(attempt),
                        )
                        .ok()
                    })
                    .expect("a paper workload generates within 16 seed attempts"),
            )
        } else {
            Arc::clone(&templates[(draw % templates.len() as u64) as usize])
        };
        origin += stride / 5 + (draw % (stride as u64 * 2).max(1)) as i64;
        let id = admits;
        requests.push(AdmitRequest::Admit {
            id,
            graph: Arc::clone(&graph),
            origin: Time::new(origin),
        });
        last_admit = Some((id, graph));
        admits += 1;
    }
    requests
}

struct Args {
    label: String,
    requests: usize,
    workers: usize,
    size: usize,
    amend_every: usize,
    stride: i64,
    capacity: usize,
    trials: usize,
    out: String,
    fresh: bool,
    guard: bool,
    floor: f64,
    metrics: Option<String>,
    durable: bool,
    wal: Option<String>,
    recover: Option<String>,
    budget_us: Option<u64>,
    faults: Vec<FaultSpec>,
    template_pool: usize,
    infeasible_frac: f64,
    slice_cache: bool,
    prefilter: bool,
    eviction: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        label: "run".to_owned(),
        requests: 4096,
        workers: 4,
        size: 8,
        amend_every: 16,
        stride: 1_000,
        capacity: 64,
        trials: 1,
        out: "BENCH_admission.json".to_owned(),
        fresh: false,
        guard: false,
        floor: 10_000.0,
        metrics: None,
        durable: false,
        wal: None,
        recover: None,
        budget_us: None,
        faults: Vec::new(),
        template_pool: 0,
        infeasible_frac: 0.0,
        slice_cache: true,
        prefilter: true,
        eviction: "oldest".to_owned(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--label" => args.label = value("--label"),
            "--requests" => {
                args.requests = value("--requests")
                    .parse()
                    .expect("--requests takes a positive integer")
            }
            "--workers" => {
                args.workers = value("--workers")
                    .parse()
                    .expect("--workers takes a positive integer")
            }
            "--size" => {
                args.size = value("--size")
                    .parse()
                    .expect("--size takes a positive integer")
            }
            "--amend-every" => {
                args.amend_every = value("--amend-every")
                    .parse()
                    .expect("--amend-every takes an integer (0 disables)")
            }
            "--stride" => {
                args.stride = value("--stride")
                    .parse()
                    .expect("--stride takes a positive integer (time units)")
            }
            "--capacity" => {
                args.capacity = value("--capacity")
                    .parse()
                    .expect("--capacity takes a positive integer")
            }
            "--trials" => {
                args.trials = value("--trials")
                    .parse()
                    .expect("--trials takes a positive integer")
            }
            "--out" => args.out = value("--out"),
            "--fresh" => args.fresh = true,
            "--guard" => args.guard = true,
            "--floor" => {
                args.floor = value("--floor")
                    .parse()
                    .expect("--floor takes a number (admissions/second)")
            }
            "--metrics" => args.metrics = Some(value("--metrics")),
            "--durable" => args.durable = true,
            "--wal" => {
                args.wal = Some(value("--wal"));
                args.durable = true;
            }
            "--recover" => args.recover = Some(value("--recover")),
            "--budget-us" => {
                args.budget_us = Some(
                    value("--budget-us")
                        .parse()
                        .expect("--budget-us takes a positive integer (microseconds)"),
                )
            }
            "--template-pool" => {
                args.template_pool = value("--template-pool")
                    .parse()
                    .expect("--template-pool takes an integer (0 disables)")
            }
            "--infeasible-frac" => {
                args.infeasible_frac = value("--infeasible-frac")
                    .parse()
                    .expect("--infeasible-frac takes a fraction in 0..1");
                assert!(
                    (0.0..=1.0).contains(&args.infeasible_frac),
                    "--infeasible-frac takes a fraction in 0..1"
                );
            }
            "--slice-cache" => {
                args.slice_cache = match value("--slice-cache").as_str() {
                    "on" => true,
                    "off" => false,
                    other => panic!("--slice-cache takes on|off, not `{other}`"),
                }
            }
            "--prefilter" => {
                args.prefilter = match value("--prefilter").as_str() {
                    "on" => true,
                    "off" => false,
                    other => panic!("--prefilter takes on|off, not `{other}`"),
                }
            }
            "--eviction" => {
                args.eviction = value("--eviction");
                assert!(
                    args.eviction == "oldest" || args.eviction == "lowest",
                    "--eviction takes oldest|lowest"
                );
            }
            "--fault" => args.faults.push(
                value("--fault")
                    .parse()
                    .unwrap_or_else(|e| panic!("bad --fault spec: {e}")),
            ),
            "--help" | "-h" => {
                eprintln!(
                    "usage: admit-load [--label NAME] [--requests N] [--workers N] [--size P] \
                     [--amend-every K] [--stride T] [--capacity N] [--trials N] [--out PATH] \
                     [--fresh] [--guard] [--floor F] [--metrics PATH] [--durable] [--wal PATH] \
                     [--recover PATH] [--budget-us N] [--fault SPEC] [--template-pool N] \
                     [--infeasible-frac F] [--slice-cache on|off] [--prefilter on|off] \
                     [--eviction oldest|lowest]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument `{other}` (try --help)"),
        }
    }
    args
}

/// Builds the bench's admission configuration (shared by load runs and
/// the standalone `--recover` mode, whose WAL fingerprints must agree).
fn bench_config(args: &Args) -> AdmitConfig {
    let scenario = Scenario::paper(
        "admit-load",
        WorkloadSpec::paper(ExecVariation::Mdet),
        // NORM/CCNE is the paper's baseline technique and — unlike ADAPT,
        // whose PURE mode has a millisecond-scale distribute tail — slices
        // with a tight latency distribution, so the coordinator's in-order
        // reorder buffer is not head-of-line blocked by a slow slicer.
        MetricKind::norm(),
        CommEstimate::Ccne,
    );
    let mut config = AdmitConfig::new(scenario, args.size)
        .with_workers(args.workers.max(1))
        .with_queue_depth(512)
        .with_capacity(args.capacity.max(1))
        .with_slice_cache(if args.slice_cache { 64 } else { 0 })
        .with_prefilter(args.prefilter);
    if args.eviction == "lowest" {
        config = config.with_eviction(LowestUtilization);
    } else {
        config = config.with_eviction(OldestFirst);
    }
    if let Some(budget_us) = args.budget_us {
        config = config.with_decision_budget(Duration::from_micros(budget_us));
    }
    if !args.faults.is_empty() {
        let mut plan = FaultPlan::new(SEED);
        for spec in &args.faults {
            plan = plan.with_fault(*spec);
        }
        config = config.with_fault_plan(plan);
    }
    config
}

/// Standalone `--recover PATH`: rebuild the committed state from a
/// write-ahead log (e.g. one left behind by a killed run), verify the
/// transcript replays bit-identically, report, and exit.
fn recover_and_report(args: &Args, path: &str) -> ! {
    let config = bench_config(args);
    let (controller, log) = match AdmissionController::recover(config.clone(), path) {
        Ok(recovered) => recovered,
        Err(e) => {
            eprintln!("admit-load recovery FAILED: {e}");
            std::process::exit(2);
        }
    };
    let replayed = log
        .replay(&config)
        .expect("sequential replay controller builds");
    if !log.matches(&replayed) {
        eprintln!("admit-load recovery FAILED: transcript diverged from sequential replay");
        std::process::exit(2);
    }
    println!(
        "recovered {} sealed decisions from {path}: {} admitted, {} rejected, \
         {} prefilter-rejected, {} errors, {} shed, {} failed; digest {:#018x}, \
         {} residents; replay verified",
        log.outcomes.len(),
        log.admitted(),
        log.rejected(),
        log.prefilter_rejected(),
        log.refused() - log.prefilter_rejected(),
        log.shed(),
        log.failed(),
        controller.digest(),
        controller.residents()
    );
    std::process::exit(0)
}

fn main() {
    let args = parse_args();
    if let Some(path) = args.recover.clone() {
        recover_and_report(&args, &path);
    }
    let requests = request_stream(
        args.requests.max(1),
        args.size,
        args.amend_every,
        args.stride.max(1),
        args.template_pool,
        args.infeasible_frac,
    );

    let wal_path = args.durable.then(|| {
        args.wal
            .clone()
            .unwrap_or_else(|| "admit_load.wal.jsonl".to_owned())
    });
    let mut config = bench_config(&args);
    if let Some(path) = &wal_path {
        config = config.durable(path);
    }

    let trials = args.trials.max(1);
    let progress = ProgressTracker::new();
    progress.configure("admit-load", 0, 1, (requests.len() * trials) as u64, 0);
    let writer = args
        .metrics
        .as_ref()
        .map(|path| MetricsWriter::new(path, Runner::METRICS_WRITE_INTERVAL));

    let registry = telemetry::global();

    eprintln!(
        "admit-load: {} requests ({} amend stride) onto {} processors, {} slicers, {} trial(s)",
        requests.len(),
        args.amend_every,
        args.size,
        args.workers,
        trials
    );
    // Best-of-N: the request stream is fixed, so every trial does identical
    // work and the fastest one is the least noise-contaminated estimate of
    // the service's sustained rate. Every trial (not just the best) must
    // pass the replay check before anything is recorded.
    let mut best: Option<(AdmissionLog, f64, LatencyStats, LatencyStats, usize, u64)> = None;
    let mut last_delta = None;
    let mut wal_recovered: Option<usize> = None;
    for trial in 0..trials {
        let before = registry.snapshot();
        let service = AdmissionService::new(config.clone()).expect("admission service starts");
        let started = Instant::now();
        let mut queue_retries = 0usize;
        for request in &requests {
            let mut pending = request.clone();
            loop {
                match service.submit(pending) {
                    Ok(()) => break,
                    Err(AdmitError::QueueFull { .. }) => {
                        queue_retries += 1;
                        std::thread::yield_now();
                        pending = request.clone();
                    }
                    Err(other) => panic!("submission failed: {other}"),
                }
                if let Some(writer) = &writer {
                    writer.maybe_write(&progress, || registry.snapshot());
                }
            }
            progress.record_cell(true, 0);
        }
        let log = service.shutdown().expect("service drains and stops");
        let elapsed = started.elapsed();

        let after = registry.snapshot();
        let latency = LatencyStats::from_snapshot(&after.admission.delta(&before.admission));
        let sojourn =
            LatencyStats::from_snapshot(&after.admission_sojourn.delta(&before.admission_sojourn));
        let evicted = after.admissions_evicted - before.admissions_evicted;
        last_delta = Some(after.delta(&before));

        // The determinism contract, re-proven on every load run: the
        // service's transcript must replay bit-identically through a fresh
        // sequential controller before the numbers are worth recording.
        let replayed = log
            .replay(&config)
            .expect("sequential replay controller builds");
        if !log.matches(&replayed) {
            eprintln!(
                "admit-load FAILED: trial {} transcript diverged from sequential replay",
                trial + 1
            );
            std::process::exit(2);
        }

        // Durable runs additionally re-prove crash recovery on every
        // trial: rebuilding from the WAL must reproduce the live
        // transcript (outcomes, digest, residents) bit for bit.
        if let Some(path) = &wal_path {
            let (recovered, rlog) = match AdmissionController::recover(config.clone(), path) {
                Ok(recovered) => recovered,
                Err(e) => {
                    eprintln!("admit-load FAILED: trial {} WAL recovery: {e}", trial + 1);
                    std::process::exit(2);
                }
            };
            if !log.matches(&rlog) || recovered.digest() != log.digest {
                eprintln!(
                    "admit-load FAILED: trial {} WAL recovery diverged from the live run",
                    trial + 1
                );
                std::process::exit(2);
            }
            wal_recovered = Some(rlog.outcomes.len());
        }

        let aps = log.outcomes.len() as f64 / elapsed.as_secs_f64();
        eprintln!(
            "trial {}/{}: {} decisions in {:.1}ms = {aps:.0}/s ({} shed, {} failed; \
             replay verified{})",
            trial + 1,
            trials,
            log.outcomes.len(),
            elapsed.as_secs_f64() * 1e3,
            log.shed(),
            log.failed(),
            if wal_path.is_some() {
                ", recovery verified"
            } else {
                ""
            }
        );
        if best.as_ref().is_none_or(|(_, b, _, _, _, _)| aps > *b) {
            best = Some((log, aps, latency, sojourn, queue_retries, evicted));
        }
    }
    progress.finish("complete");
    // The at-exit metrics document (last trial's telemetry delta), written
    // after finish so it carries the run outcome.
    if let (Some(writer), Some(delta)) = (&writer, last_delta) {
        writer.write_now(&progress, delta);
    }

    let (log, admissions_per_sec, latency, sojourn, queue_retries, evicted) =
        best.expect("at least one trial ran");
    let decisions = log.outcomes.len();
    let admitted = log.admitted();
    let rejected = log.rejected();
    let prefilter_rejects = log.prefilter_rejected();
    let errors = log.refused() - prefilter_rejects;
    let shed = log.shed();
    let failed = log.failed();

    // Conservativeness audit: the pre-filter may only refuse graphs the
    // full slice + trial path would also have rejected. Re-run every
    // pre-filter refusal through a pre-filter-off controller against an
    // empty state (the most permissive state any trial can see); an
    // admit here means a bound is unsound and the run is worthless.
    if prefilter_rejects > 0 {
        let mut audit_config = config.clone();
        audit_config.wal_path = None;
        audit_config = audit_config.with_prefilter(false);
        let mut unsound = 0usize;
        for (request, outcome) in log.requests.iter().zip(log.outcomes.iter()) {
            if !matches!(outcome, AdmitOutcome::Refused(Refusal::Prefilter { .. })) {
                continue;
            }
            let mut probe = AdmissionController::new(audit_config.clone())
                .expect("conservativeness-audit controller builds");
            if matches!(
                probe.handle(request),
                Ok(verdict) if verdict.admitted
            ) {
                unsound += 1;
            }
        }
        if unsound > 0 {
            eprintln!(
                "WARNING: pre-filter UNSOUND — {unsound} of {prefilter_rejects} \
                 pre-filter refusals would have been ADMITTED by the full \
                 slice + trial path; a necessary-condition bound is wrong"
            );
            std::process::exit(2);
        }
        eprintln!(
            "conservativeness audit passed: all {prefilter_rejects} pre-filter \
             refusals also reject under the full slice + trial path"
        );
    }
    let elapsed_ms = decisions as f64 / admissions_per_sec * 1e3;
    let replay_verified = true;

    let point = LoadPoint {
        processors: args.size,
        workers: args.workers.max(1),
        queue_depth: config.queue_depth,
        capacity: config.capacity,
        amend_every: args.amend_every,
        stride: args.stride.max(1),
        trials,
        requests: decisions,
        admitted,
        rejected,
        errors,
        prefilter_rejects,
        template_pool: args.template_pool,
        infeasible_frac: args.infeasible_frac,
        slice_cache: if args.slice_cache { 64 } else { 0 },
        eviction: args.eviction.clone(),
        evicted,
        shed,
        failed,
        queue_retries,
        elapsed_ms,
        admissions_per_sec,
        latency,
        sojourn: Some(sojourn),
        durable: wal_path.is_some(),
        wal_recovered,
        replay_verified,
    };
    eprintln!(
        "admit-load: {decisions} decisions in {elapsed_ms:.1}ms = {admissions_per_sec:.0}/s \
         ({admitted} admitted, {rejected} rejected, {prefilter_rejects} prefilter-rejected, \
         {errors} errors, {shed} shed, {failed} failed, {evicted} evicted, \
         {queue_retries} retries)"
    );
    eprintln!(
        "latency: mean {}us p50 {}us p90 {}us p99 {}us max {}us; replay verified",
        point.latency.mean_us,
        point.latency.p50_us,
        point.latency.p90_us,
        point.latency.p99_us,
        point.latency.max_us
    );
    if let Some(sojourn) = &point.sojourn {
        eprintln!(
            "sojourn: mean {}us p50 {}us p90 {}us p99 {}us max {}us",
            sojourn.mean_us, sojourn.p50_us, sojourn.p90_us, sojourn.p99_us, sojourn.max_us
        );
    }
    if let Some(recovered) = wal_recovered {
        eprintln!("durable: {recovered} sealed decisions recovered bit-identically from the WAL");
    }

    if args.guard && admissions_per_sec < args.floor {
        eprintln!(
            "admission guard FAILED: {admissions_per_sec:.0} admissions/s is below the \
             {:.0}/s floor",
            args.floor
        );
        std::process::exit(2);
    }
    if args.guard {
        eprintln!(
            "admission guard passed ({admissions_per_sec:.0}/s >= {:.0}/s)",
            args.floor
        );
    }
    // With a decision budget in force, no request may sojourn far past it:
    // anything older is shed before slicing, so the sojourn tail is bounded
    // by budget + service time (doubled to absorb the log2-bucket
    // percentile error of the histogram).
    if args.guard {
        if let (Some(budget_us), Some(sojourn)) = (args.budget_us, &point.sojourn) {
            let bound = 2 * (budget_us + point.latency.max_us);
            if sojourn.p99_us > bound {
                eprintln!(
                    "staleness guard FAILED: p99 sojourn {}us exceeds {bound}us \
                     (budget {budget_us}us)",
                    sojourn.p99_us
                );
                std::process::exit(2);
            }
            eprintln!(
                "staleness guard passed (p99 sojourn {}us <= {bound}us)",
                sojourn.p99_us
            );
        }
    }

    let mut file = if args.fresh {
        LoadFile::empty()
    } else {
        match std::fs::read_to_string(&args.out) {
            Ok(text) => serde_json::from_str(&text).unwrap_or_else(|e| {
                eprintln!(
                    "warning: {} exists but does not parse ({e}); starting a fresh file \
                     (previously recorded runs are dropped)",
                    args.out
                );
                LoadFile::empty()
            }),
            Err(_) => LoadFile::empty(),
        }
    };
    match file.runs.iter_mut().find(|run| run.label == args.label) {
        Some(run) => run.points = vec![point],
        None => file.runs.push(LoadRun {
            label: args.label,
            seed: SEED,
            points: vec![point],
        }),
    }
    let json = serde_json::to_string_pretty(&file).expect("serialization cannot fail");
    std::fs::write(&args.out, json + "\n")
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", args.out));
    eprintln!("wrote {}", args.out);
}
