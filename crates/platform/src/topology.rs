//! Interconnection network topologies.
//!
//! The paper's experimental platform is a homogeneous multiprocessor with a
//! shared-bus interconnect at one time unit per transmitted data item
//! (§5.1); §8 reports that AST scales across other topologies and CCR
//! values, so ring, 2-D mesh, fully-connected and custom matrices are
//! provided as well.

use serde::{Deserialize, Serialize};

use taskgraph::Time;

use crate::{PlatformError, ProcessorId};

/// An interconnection topology together with its per-item transfer cost.
///
/// The *distance* between two distinct processors is measured in hops; the
/// cost of transferring `items` data items is
/// `hops × cost_per_item × items`. On the same processor the cost is zero
/// (shared memory, §5.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Topology {
    /// A single time-multiplexed bus: every remote transfer costs
    /// `cost_per_item` per item regardless of the endpoints. The paper's
    /// headline configuration with `cost_per_item = 1`.
    SharedBus {
        /// Transfer cost per data item.
        cost_per_item: Time,
    },
    /// Dedicated links between every pair of processors.
    FullyConnected {
        /// Transfer cost per data item.
        cost_per_item: Time,
    },
    /// A bidirectional ring; the distance is the shorter way around.
    Ring {
        /// Transfer cost per data item and hop.
        cost_per_item_hop: Time,
    },
    /// A 2-D mesh of `width × height` processors with Manhattan routing.
    Mesh2D {
        /// Mesh width (columns).
        width: usize,
        /// Mesh height (rows).
        height: usize,
        /// Transfer cost per data item and hop.
        cost_per_item_hop: Time,
    },
    /// An explicit per-pair hop matrix (row-major `n × n`), for irregular
    /// networks.
    Custom {
        /// `hops[i * n + j]` = hop count from processor `i` to `j`.
        hops: Vec<u32>,
        /// Transfer cost per data item and hop.
        cost_per_item_hop: Time,
    },
}

impl Topology {
    /// The paper's interconnect: a shared bus at one time unit per item.
    pub fn paper_bus() -> Self {
        Topology::SharedBus {
            cost_per_item: Time::new(1),
        }
    }

    /// A short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            Topology::SharedBus { .. } => "shared-bus",
            Topology::FullyConnected { .. } => "fully-connected",
            Topology::Ring { .. } => "ring",
            Topology::Mesh2D { .. } => "mesh-2d",
            Topology::Custom { .. } => "custom",
        }
    }

    /// Number of hops between two processors for a platform of `n`
    /// processors, or an error if the topology cannot host `n` processors.
    ///
    /// Same-processor distance is always zero.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::TopologyMismatch`] if `n` is incompatible
    /// with the topology (mesh dimensions, custom matrix size).
    pub fn hops(&self, n: usize, from: ProcessorId, to: ProcessorId) -> Result<u32, PlatformError> {
        self.check_size(n)?;
        let (a, b) = (from.index(), to.index());
        if a >= n || b >= n {
            return Err(PlatformError::UnknownProcessor(if a >= n {
                from
            } else {
                to
            }));
        }
        if a == b {
            return Ok(0);
        }
        Ok(match self {
            Topology::SharedBus { .. } | Topology::FullyConnected { .. } => 1,
            Topology::Ring { .. } => {
                let d = a.abs_diff(b);
                d.min(n - d) as u32
            }
            Topology::Mesh2D { width, .. } => {
                let (ax, ay) = (a % width, a / width);
                let (bx, by) = (b % width, b / width);
                (ax.abs_diff(bx) + ay.abs_diff(by)) as u32
            }
            Topology::Custom { hops, .. } => hops[a * n + b],
        })
    }

    /// The per-item, per-hop transfer cost.
    pub fn cost_per_item_hop(&self) -> Time {
        match self {
            Topology::SharedBus { cost_per_item } | Topology::FullyConnected { cost_per_item } => {
                *cost_per_item
            }
            Topology::Ring { cost_per_item_hop }
            | Topology::Mesh2D {
                cost_per_item_hop, ..
            }
            | Topology::Custom {
                cost_per_item_hop, ..
            } => *cost_per_item_hop,
        }
    }

    /// The worst-case (maximum over processor pairs) per-item cost on a
    /// platform of `n` processors. Used by the pessimistic CCAA estimator.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::TopologyMismatch`] if `n` is incompatible
    /// with the topology.
    pub fn worst_case_cost_per_item(&self, n: usize) -> Result<Time, PlatformError> {
        self.check_size(n)?;
        let per_hop = self.cost_per_item_hop();
        let max_hops: u32 = match self {
            _ if n <= 1 => 0,
            Topology::SharedBus { .. } | Topology::FullyConnected { .. } => 1,
            Topology::Ring { .. } => (n / 2) as u32,
            Topology::Mesh2D { width, height, .. } => ((width - 1) + (height - 1)) as u32,
            Topology::Custom { hops, .. } => hops.iter().copied().max().unwrap_or(0),
        };
        Ok(per_hop * i64::from(max_hops))
    }

    /// Whether the interconnect serializes all remote transfers through one
    /// shared medium (relevant to contention-aware communication models).
    pub fn is_shared_medium(&self) -> bool {
        matches!(self, Topology::SharedBus { .. })
    }

    fn check_size(&self, n: usize) -> Result<(), PlatformError> {
        match self {
            Topology::Mesh2D { width, height, .. }
                if (width * height != n || *width == 0 || *height == 0) =>
            {
                return Err(PlatformError::TopologyMismatch {
                    topology: self.label(),
                    processors: n,
                });
            }
            Topology::Custom { hops, .. } if hops.len() != n * n => {
                return Err(PlatformError::TopologyMismatch {
                    topology: self.label(),
                    processors: n,
                });
            }
            _ => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcessorId {
        ProcessorId::new(i)
    }

    #[test]
    fn bus_distances() {
        let t = Topology::paper_bus();
        assert_eq!(t.hops(4, p(0), p(0)).unwrap(), 0);
        assert_eq!(t.hops(4, p(0), p(3)).unwrap(), 1);
        assert_eq!(t.cost_per_item_hop(), Time::new(1));
        assert!(t.is_shared_medium());
        assert_eq!(t.worst_case_cost_per_item(4).unwrap(), Time::new(1));
        assert_eq!(t.worst_case_cost_per_item(1).unwrap(), Time::ZERO);
    }

    #[test]
    fn ring_takes_shorter_way() {
        let t = Topology::Ring {
            cost_per_item_hop: Time::new(2),
        };
        assert_eq!(t.hops(6, p(0), p(1)).unwrap(), 1);
        assert_eq!(t.hops(6, p(0), p(5)).unwrap(), 1);
        assert_eq!(t.hops(6, p(0), p(3)).unwrap(), 3);
        assert_eq!(t.worst_case_cost_per_item(6).unwrap(), Time::new(6));
        assert!(!t.is_shared_medium());
    }

    #[test]
    fn mesh_manhattan_distance() {
        let t = Topology::Mesh2D {
            width: 3,
            height: 2,
            cost_per_item_hop: Time::new(1),
        };
        // layout: 0 1 2 / 3 4 5
        assert_eq!(t.hops(6, p(0), p(5)).unwrap(), 3);
        assert_eq!(t.hops(6, p(1), p(4)).unwrap(), 1);
        assert_eq!(t.worst_case_cost_per_item(6).unwrap(), Time::new(3));
        assert!(t.hops(5, p(0), p(1)).is_err());
    }

    #[test]
    fn custom_matrix() {
        let t = Topology::Custom {
            hops: vec![0, 2, 2, 0],
            cost_per_item_hop: Time::new(1),
        };
        assert_eq!(t.hops(2, p(0), p(1)).unwrap(), 2);
        assert_eq!(t.worst_case_cost_per_item(2).unwrap(), Time::new(2));
        assert!(t.hops(3, p(0), p(1)).is_err());
    }

    #[test]
    fn unknown_processor_rejected() {
        let t = Topology::paper_bus();
        assert!(matches!(
            t.hops(2, p(0), p(7)),
            Err(PlatformError::UnknownProcessor(_))
        ));
    }

    #[test]
    fn labels() {
        assert_eq!(Topology::paper_bus().label(), "shared-bus");
        assert_eq!(
            Topology::FullyConnected {
                cost_per_item: Time::new(1)
            }
            .label(),
            "fully-connected"
        );
    }
}
