//! Multiprocessor platform model for distributed hard real-time scheduling.
//!
//! This crate models the *system architecture* of the paper (§5.1): a
//! homogeneous multiprocessor whose processors communicate over an
//! interconnection network. The headline configuration is 2–16 processors on
//! a time-multiplexed shared bus costing one time unit per transmitted data
//! item, with free intra-processor communication via shared memory, and
//! communication overlapping computation.
//!
//! It also models **locality constraints**: a [`Pinning`] records the subset
//! of subtasks whose processor assignment is fixed in advance (strict
//! constraints, e.g. tasks tied to sensors or actuators). Under *relaxed*
//! locality constraints — the paper's setting — most subtasks are unpinned.
//!
//! # Examples
//!
//! ```
//! use platform::{Platform, ProcessorId, Topology};
//!
//! # fn main() -> Result<(), platform::PlatformError> {
//! let platform = Platform::homogeneous(4, Topology::paper_bus())?;
//! let cost = platform.comm_cost(ProcessorId::new(0), ProcessorId::new(2), 20)?;
//! assert_eq!(cost.as_i64(), 20); // 1 unit per item on the bus
//! let local = platform.comm_cost(ProcessorId::new(1), ProcessorId::new(1), 20)?;
//! assert!(local.is_zero()); // shared memory
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod error;
mod pinning;
mod topology;

use std::fmt;

use serde::{Deserialize, Serialize};
use taskgraph::Time;

pub use error::PlatformError;
pub use pinning::Pinning;
pub use topology::Topology;

/// Identifier of a processor within one [`Platform`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ProcessorId(u32);

impl ProcessorId {
    /// Creates an id from a raw index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        ProcessorId(index)
    }

    /// Returns the raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcessorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A homogeneous multiprocessor with an interconnection network.
///
/// Construct with [`Platform::homogeneous`]; the processor count must be
/// compatible with the topology (e.g. mesh dimensions).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    processors: usize,
    topology: Topology,
}

impl Platform {
    /// Creates a platform of `processors` identical processors connected by
    /// `topology`.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::NoProcessors`] for a zero-processor platform
    /// and [`PlatformError::TopologyMismatch`] if the topology cannot host
    /// the requested processor count.
    pub fn homogeneous(processors: usize, topology: Topology) -> Result<Self, PlatformError> {
        if processors == 0 {
            return Err(PlatformError::NoProcessors);
        }
        // Validate topology/size compatibility once, up front.
        topology.worst_case_cost_per_item(processors)?;
        Ok(Platform {
            processors,
            topology,
        })
    }

    /// The paper's platform: `processors` on a shared bus at one time unit
    /// per data item.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::NoProcessors`] if `processors` is zero.
    pub fn paper(processors: usize) -> Result<Self, PlatformError> {
        Platform::homogeneous(processors, Topology::paper_bus())
    }

    /// Number of processors.
    #[inline]
    pub fn processor_count(&self) -> usize {
        self.processors
    }

    /// Iterates over all processor ids.
    pub fn processors(&self) -> impl ExactSizeIterator<Item = ProcessorId> + '_ {
        (0..self.processors as u32).map(ProcessorId::new)
    }

    /// The interconnection topology.
    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Cost of transferring `items` data items from `from` to `to`.
    ///
    /// Zero when `from == to` (shared memory); otherwise
    /// `hops × cost_per_item_hop × items`.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::UnknownProcessor`] if either processor id is
    /// out of range.
    pub fn comm_cost(
        &self,
        from: ProcessorId,
        to: ProcessorId,
        items: u64,
    ) -> Result<Time, PlatformError> {
        let hops = self.topology.hops(self.processors, from, to)?;
        Ok(self.topology.cost_per_item_hop() * (i64::from(hops) * items as i64))
    }

    /// The worst-case cost per data item between any two distinct
    /// processors. Used by the pessimistic CCAA estimation strategy.
    pub fn worst_case_cost_per_item(&self) -> Time {
        self.topology
            .worst_case_cost_per_item(self.processors)
            .expect("validated at construction")
    }

    /// Returns `true` if remote transfers share a single medium (a bus) and
    /// therefore contend with each other.
    pub fn has_shared_medium(&self) -> bool {
        self.topology.is_shared_medium()
    }

    /// Validates that `proc` belongs to this platform.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::UnknownProcessor`] otherwise.
    pub fn check_processor(&self, proc: ProcessorId) -> Result<(), PlatformError> {
        if proc.index() >= self.processors {
            return Err(PlatformError::UnknownProcessor(proc));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_platform() {
        let p = Platform::paper(8).unwrap();
        assert_eq!(p.processor_count(), 8);
        assert_eq!(p.processors().count(), 8);
        assert!(p.has_shared_medium());
        assert_eq!(p.worst_case_cost_per_item(), Time::new(1));
        assert_eq!(p.topology().label(), "shared-bus");
    }

    #[test]
    fn comm_cost_scales_with_items_and_hops() {
        let p = Platform::homogeneous(
            6,
            Topology::Ring {
                cost_per_item_hop: Time::new(2),
            },
        )
        .unwrap();
        let c = p
            .comm_cost(ProcessorId::new(0), ProcessorId::new(3), 10)
            .unwrap();
        assert_eq!(c, Time::new(60)); // 3 hops * 2/item/hop * 10 items
        let local = p
            .comm_cost(ProcessorId::new(2), ProcessorId::new(2), 10)
            .unwrap();
        assert_eq!(local, Time::ZERO);
    }

    #[test]
    fn zero_processors_rejected() {
        assert!(matches!(
            Platform::paper(0),
            Err(PlatformError::NoProcessors)
        ));
    }

    #[test]
    fn incompatible_topology_rejected() {
        let topo = Topology::Mesh2D {
            width: 3,
            height: 3,
            cost_per_item_hop: Time::new(1),
        };
        assert!(matches!(
            Platform::homogeneous(8, topo),
            Err(PlatformError::TopologyMismatch { .. })
        ));
    }

    #[test]
    fn check_processor_bounds() {
        let p = Platform::paper(2).unwrap();
        assert!(p.check_processor(ProcessorId::new(1)).is_ok());
        assert!(p.check_processor(ProcessorId::new(2)).is_err());
    }

    #[test]
    fn processor_id_display() {
        assert_eq!(ProcessorId::new(3).to_string(), "p3");
        assert_eq!(ProcessorId::new(3).index(), 3);
    }
}
