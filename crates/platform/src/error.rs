//! Error types for platform construction and queries.

use std::error::Error;
use std::fmt;

use taskgraph::SubtaskId;

use crate::ProcessorId;

/// Error produced by [`Platform`] construction or queries.
///
/// [`Platform`]: crate::Platform
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlatformError {
    /// A platform must have at least one processor.
    NoProcessors,
    /// A processor id outside the platform was used.
    UnknownProcessor(ProcessorId),
    /// The topology cannot host the requested number of processors.
    TopologyMismatch {
        /// Topology label.
        topology: &'static str,
        /// Requested processor count.
        processors: usize,
    },
    /// A pinning refers to a subtask that is already pinned elsewhere.
    ConflictingPin(SubtaskId),
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::NoProcessors => write!(f, "platform has no processors"),
            PlatformError::UnknownProcessor(p) => write!(f, "unknown processor {p}"),
            PlatformError::TopologyMismatch {
                topology,
                processors,
            } => write!(f, "topology {topology} cannot host {processors} processors"),
            PlatformError::ConflictingPin(t) => {
                write!(f, "subtask {t} is already pinned to a different processor")
            }
        }
    }
}

impl Error for PlatformError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(PlatformError::NoProcessors
            .to_string()
            .contains("no processors"));
        assert!(PlatformError::UnknownProcessor(ProcessorId::new(9))
            .to_string()
            .contains("p9"));
        let tm = PlatformError::TopologyMismatch {
            topology: "mesh-2d",
            processors: 7,
        };
        assert!(tm.to_string().contains("mesh-2d"));
        assert!(PlatformError::ConflictingPin(SubtaskId::new(1))
            .to_string()
            .contains("t1"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<PlatformError>();
    }
}
