//! Strict locality constraints: pre-assigned subtask placements.
//!
//! In the paper's setting only a *subset* of subtasks are constrained to
//! specific processors (e.g. those tied to sensors and actuators); the rest
//! are placed freely by the scheduler. A [`Pinning`] records that subset.
//! An *empty* pinning is the fully relaxed configuration used in the
//! headline experiments; a *total* pinning (every subtask pinned) recovers
//! the strict-locality setting assumed by prior work such as BST.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use taskgraph::{SubtaskId, TaskGraph};

use crate::{Platform, PlatformError, ProcessorId};

/// A partial mapping from subtasks to processors (strict locality
/// constraints).
///
/// # Examples
///
/// ```
/// use platform::{Pinning, ProcessorId};
/// use taskgraph::SubtaskId;
///
/// # fn main() -> Result<(), platform::PlatformError> {
/// let mut pins = Pinning::new();
/// pins.pin(SubtaskId::new(0), ProcessorId::new(1))?;
/// assert_eq!(pins.processor_for(SubtaskId::new(0)), Some(ProcessorId::new(1)));
/// assert_eq!(pins.processor_for(SubtaskId::new(5)), None);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pinning {
    pins: BTreeMap<SubtaskId, ProcessorId>,
}

impl Pinning {
    /// Creates an empty pinning: fully relaxed locality constraints.
    pub fn new() -> Self {
        Pinning::default()
    }

    /// Pins `subtask` to `proc`.
    ///
    /// Re-pinning to the same processor is a no-op.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::ConflictingPin`] if the subtask is already
    /// pinned to a *different* processor.
    pub fn pin(&mut self, subtask: SubtaskId, proc: ProcessorId) -> Result<(), PlatformError> {
        match self.pins.get(&subtask) {
            Some(&existing) if existing != proc => Err(PlatformError::ConflictingPin(subtask)),
            _ => {
                self.pins.insert(subtask, proc);
                Ok(())
            }
        }
    }

    /// Removes the strict locality constraint on `subtask`, returning the
    /// processor it was pinned to (or `None` if it was not pinned).
    ///
    /// Unpinning relaxes the constraint set, so it never conflicts — the
    /// counterpart of [`pin`](Self::pin) for delta application (a pin move
    /// is an unpin followed by a pin).
    pub fn unpin(&mut self, subtask: SubtaskId) -> Option<ProcessorId> {
        self.pins.remove(&subtask)
    }

    /// The processor `subtask` is pinned to, if any.
    pub fn processor_for(&self, subtask: SubtaskId) -> Option<ProcessorId> {
        self.pins.get(&subtask).copied()
    }

    /// Returns `true` if `subtask` has a strict locality constraint.
    pub fn is_pinned(&self, subtask: SubtaskId) -> bool {
        self.pins.contains_key(&subtask)
    }

    /// Number of pinned subtasks.
    pub fn len(&self) -> usize {
        self.pins.len()
    }

    /// Returns `true` if no subtask is pinned (fully relaxed constraints).
    pub fn is_empty(&self) -> bool {
        self.pins.is_empty()
    }

    /// Iterates over `(subtask, processor)` pins in subtask order.
    pub fn iter(&self) -> impl Iterator<Item = (SubtaskId, ProcessorId)> + '_ {
        self.pins.iter().map(|(&t, &p)| (t, p))
    }

    /// Returns `true` if every subtask of `graph` is pinned — the
    /// strict-locality setting of conventional deadline distribution.
    pub fn is_total_for(&self, graph: &TaskGraph) -> bool {
        graph.subtask_ids().all(|id| self.is_pinned(id))
    }

    /// Validates that every pinned processor exists on `platform` and every
    /// pinned subtask exists in `graph`.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::UnknownProcessor`] for an out-of-range
    /// processor. Unknown subtasks cannot be represented (ids are graph
    /// scoped), so only processors are checked.
    pub fn validate(&self, graph: &TaskGraph, platform: &Platform) -> Result<(), PlatformError> {
        for (subtask, proc) in self.iter() {
            platform.check_processor(proc)?;
            // Subtask ids from a different graph are indistinguishable from
            // valid ones unless out of range; reject those.
            if subtask.index() >= graph.subtask_count() {
                return Err(PlatformError::ConflictingPin(subtask));
            }
        }
        Ok(())
    }
}

impl FromIterator<(SubtaskId, ProcessorId)> for Pinning {
    fn from_iter<I: IntoIterator<Item = (SubtaskId, ProcessorId)>>(iter: I) -> Self {
        let mut pinning = Pinning::new();
        for (t, p) in iter {
            // Later entries win, mirroring map collection semantics.
            pinning.pins.insert(t, p);
        }
        pinning
    }
}

impl Extend<(SubtaskId, ProcessorId)> for Pinning {
    fn extend<I: IntoIterator<Item = (SubtaskId, ProcessorId)>>(&mut self, iter: I) {
        for (t, p) in iter {
            self.pins.insert(t, p);
        }
    }
}

#[cfg(test)]
mod tests {
    use taskgraph::{Subtask, Time};

    use super::*;

    fn two_node_graph() -> TaskGraph {
        let mut b = TaskGraph::builder();
        let a = b.add_subtask(Subtask::new(Time::new(1)).released_at(Time::ZERO));
        let z = b.add_subtask(Subtask::new(Time::new(1)).due_at(Time::new(10)));
        b.add_edge(a, z, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn pin_and_query() {
        let mut pins = Pinning::new();
        assert!(pins.is_empty());
        pins.pin(SubtaskId::new(0), ProcessorId::new(1)).unwrap();
        assert!(pins.is_pinned(SubtaskId::new(0)));
        assert!(!pins.is_pinned(SubtaskId::new(1)));
        assert_eq!(pins.len(), 1);
        // Same pin again is fine; different pin conflicts.
        pins.pin(SubtaskId::new(0), ProcessorId::new(1)).unwrap();
        assert!(matches!(
            pins.pin(SubtaskId::new(0), ProcessorId::new(2)),
            Err(PlatformError::ConflictingPin(_))
        ));
    }

    #[test]
    fn unpin_releases_the_constraint() {
        let mut pins = Pinning::new();
        pins.pin(SubtaskId::new(0), ProcessorId::new(1)).unwrap();
        assert_eq!(pins.unpin(SubtaskId::new(0)), Some(ProcessorId::new(1)));
        assert!(!pins.is_pinned(SubtaskId::new(0)));
        assert_eq!(pins.unpin(SubtaskId::new(0)), None);
        // A pin move: unpin then pin somewhere else, no conflict.
        pins.pin(SubtaskId::new(1), ProcessorId::new(0)).unwrap();
        pins.unpin(SubtaskId::new(1));
        pins.pin(SubtaskId::new(1), ProcessorId::new(2)).unwrap();
        assert_eq!(
            pins.processor_for(SubtaskId::new(1)),
            Some(ProcessorId::new(2))
        );
    }

    #[test]
    fn totality() {
        let g = two_node_graph();
        let mut pins = Pinning::new();
        assert!(!pins.is_total_for(&g));
        pins.pin(SubtaskId::new(0), ProcessorId::new(0)).unwrap();
        pins.pin(SubtaskId::new(1), ProcessorId::new(0)).unwrap();
        assert!(pins.is_total_for(&g));
    }

    #[test]
    fn validate_against_platform_and_graph() {
        let g = two_node_graph();
        let platform = Platform::paper(2).unwrap();
        let mut pins = Pinning::new();
        pins.pin(SubtaskId::new(0), ProcessorId::new(1)).unwrap();
        assert!(pins.validate(&g, &platform).is_ok());

        let mut bad_proc = Pinning::new();
        bad_proc
            .pin(SubtaskId::new(0), ProcessorId::new(9))
            .unwrap();
        assert!(bad_proc.validate(&g, &platform).is_err());

        let mut bad_task = Pinning::new();
        bad_task
            .pin(SubtaskId::new(42), ProcessorId::new(0))
            .unwrap();
        assert!(bad_task.validate(&g, &platform).is_err());
    }

    #[test]
    fn collect_and_extend() {
        let pins: Pinning = [
            (SubtaskId::new(0), ProcessorId::new(0)),
            (SubtaskId::new(1), ProcessorId::new(1)),
        ]
        .into_iter()
        .collect();
        assert_eq!(pins.len(), 2);
        let mut pins = pins;
        pins.extend([(SubtaskId::new(2), ProcessorId::new(0))]);
        assert_eq!(pins.len(), 3);
        assert_eq!(pins.iter().count(), 3);
    }
}
