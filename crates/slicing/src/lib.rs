//! Deadline distribution for distributed hard real-time systems with
//! relaxed locality constraints.
//!
//! This crate is the core contribution of the reproduced paper (Jonsson &
//! Shin, ICDCS 1997): given a task graph with end-to-end deadlines, assign
//! every subtask — and every non-negligible communication subtask — a static
//! execution window (*slice*) **before** tasks are assigned to processors.
//!
//! The engine is the basic slicing loop of Figure 1 ([`Slicer`]),
//! parameterized by:
//!
//! * a **metric** ([`SliceMetric`]) that scores candidate critical paths and
//!   shapes per-subtask slack:
//!   [`metrics::Norm`] and [`metrics::Pure`] form the **Basic Slicing
//!   Technique (BST)**; [`metrics::Thres`] and [`metrics::Adapt`] form the
//!   **Adaptive Slicing Technique (AST)**;
//! * a **communication-cost estimation strategy** ([`CommEstimate`]):
//!   CCNE (assume no interprocessor communication), CCAA (always assume it),
//!   or real costs from a known assignment (the strict-locality baseline).
//!
//! The result is a [`DeadlineAssignment`] mapping every subtask to a
//! [`Window`], ready for a deadline-driven scheduler.
//!
//! # Examples
//!
//! ```
//! use platform::Platform;
//! use rand::SeedableRng;
//! use slicing::{CommEstimate, Slicer};
//! use taskgraph::gen::{generate, ExecVariation, WorkloadSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = WorkloadSpec::paper(ExecVariation::Ldet);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let graph = generate(&spec, &mut rng)?;
//! let platform = Platform::paper(8)?;
//!
//! // The paper's best BST configuration ...
//! let bst = Slicer::bst_pure().distribute(&graph, &platform)?;
//! // ... and the proposed AST configuration.
//! let ast = Slicer::ast_adapt().distribute(&graph, &platform)?;
//!
//! assert!(bst.validate(&graph).is_ok());
//! assert!(ast.validate(&graph).is_ok());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod algorithm;
mod assignment;
mod baselines;
mod cache;
mod context;
mod delta;
mod error;
mod estimate;
mod expanded;
mod incremental;
pub mod metrics;
mod path_search;
mod prefilter;

pub use algorithm::Slicer;
pub use assignment::{DeadlineAssignment, SliceViolation, ValidationReport, Window};
pub use baselines::{distribute_baseline, BaselineStrategy};
pub use cache::{SliceCache, SliceKey};
pub use context::MetricContext;
pub use delta::{Applied, DeltaError, DeltaOp, GraphDelta};
pub use error::SliceError;
pub use estimate::CommEstimate;
pub use incremental::{RedistributeStats, Redistribution, SliceMemo};
pub use metrics::{Adapt, MetricKind, Norm, Pure, ShareRule, SliceMetric, Thres, ThresholdSpec};
pub use prefilter::{prefilter, PrefilterReject};

#[cfg(test)]
mod send_sync_tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn public_types_are_send_and_sync() {
        assert_send_sync::<Slicer>();
        assert_send_sync::<DeadlineAssignment>();
        assert_send_sync::<Window>();
        assert_send_sync::<MetricKind>();
        assert_send_sync::<CommEstimate>();
        assert_send_sync::<SliceError>();
        assert_send_sync::<MetricContext>();
        assert_send_sync::<GraphDelta>();
        assert_send_sync::<DeltaOp>();
        assert_send_sync::<DeltaError>();
        assert_send_sync::<Applied>();
        assert_send_sync::<SliceMemo>();
        assert_send_sync::<Redistribution>();
        assert_send_sync::<RedistributeStats>();
        assert_send_sync::<SliceKey>();
        assert_send_sync::<SliceCache<u32>>();
        assert_send_sync::<PrefilterReject>();
    }
}
