//! Incremental re-slicing: replay the slicing loop against a memoized
//! previous run, re-searching only the dirty cone of a graph delta.
//!
//! # How it works
//!
//! The slicing loop (Figure 1) is deterministic: given the expanded graph,
//! per-node virtual times, and the accumulated `assigned`/release/deadline
//! state at the top of an iteration, the chosen critical path — and hence
//! the whole rest of the run — is a pure function of those inputs. A traced
//! run therefore records, per iteration, a snapshot of that state plus the
//! *local* winner of every per-start DP search together with the search's
//! **read set** (every node whose mutable state it touched, as a bitset).
//!
//! On redistribute, the loop replays from a fresh state over the mutated
//! graph. Invalidation works at three strengths:
//!
//! * **State dirt** (read-set level). At each iteration the new state is
//!   diffed against the old snapshot. The diff distinguishes what a search
//!   can actually observe: interior exploration branches only on anchor
//!   *presence* (`assigned`, `rel.is_none()`, `dl.is_some()`), while anchor
//!   *values* are read in exactly two places — the start's release and the
//!   deadlines of reached endpoints. An assignment or presence flip
//!   therefore dirties the node for every cached search whose read set
//!   touches it, but a value-only change (a still-anchored node whose
//!   anchor moved) invalidates only searches *starting* at the node
//!   (release values) or reaching it as an endpoint (deadline values,
//!   checked against the read set). This is what keeps the re-anchoring
//!   ripple of an accepted slice — which rewrites neighbor anchor values
//!   but rarely their presence — from cascading into a full re-search. A
//!   node assigned in both runs is always clean.
//! * **Increased virtual weights** (read-set level). The DP's exploration
//!   order is weight-independent, but a larger weight can promote any path
//!   through the node, so every cached search that examined it re-runs.
//! * **Decreased virtual weights** (winner level). Path scores are
//!   monotone non-increasing in total virtual weight — `EqualShare`
//!   unconditionally, `Proportional` whenever every window is non-negative
//!   (checked via the envelope `min deadline ≥ max release` over the
//!   unassigned anchors, demoting to read-set strength when it fails). A
//!   decrease can therefore only make competing paths *lose*, so a cached
//!   winner stays the first-found argmin unless its own path routes
//!   through a decreased node. This is what makes WCET *tightenings* — the
//!   common direction for measurement-based re-estimation — nearly free.
//!
//! On top of the dirty rules, the replay tracks whether the state still
//! **matches** the old snapshot (it does until a different winner is
//! chosen, and again once a divergent region has been sliced away in both
//! runs). On the matched prefix the per-node diff, the `classify` pass and
//! the snapshot clones are all skipped: the old iteration's record is moved
//! into the new trace wholesale and only the few weight-dirty nodes are
//! consulted, so an identity or far-from-the-cone delta replays at memmove
//! speed.
//!
//! Winners compose across ascending starts with the same strict `<` as the
//! full sweep, so the chosen path — and therefore the produced
//! [`DeadlineAssignment`] — is **bit-identical** to a from-scratch
//! [`Slicer::distribute`], which the delta-equivalence property suite
//! enforces over random delta sequences.
//!
//! # Fallback
//!
//! The replay silently falls back to a full traced run (still priming the
//! memo for next time) when reuse would be unsound: the memo is unprimed,
//! the slicer configuration or platform changed, or the delta changed the
//! *structure* of the expanded graph (subtask/edge insertion or removal,
//! or a message crossing the materialization threshold). Anchor, WCET and
//! pin deltas keep the structure intact and stay on the incremental path;
//! they also leave the subtask/edge signature untouched, in which case the
//! memoized expanded graph is reused without being rebuilt.
//! [`RedistributeStats::fell_back`] reports which path ran.

use platform::Platform;
use taskgraph::{TaskGraph, Time};

use crate::algorithm::{apply_path, finalize, SliceState};
use crate::expanded::{ExpKind, ExpandedGraph};
use crate::path_search::{CriticalPath, PathSearch};
use crate::{DeadlineAssignment, MetricContext, ShareRule, SliceError, Slicer, Window};

/// Memoized state of one traced slicing run, consumed and refreshed by
/// [`Slicer::redistribute`].
///
/// Create one with [`SliceMemo::new`] (unprimed), then prime it with
/// [`Slicer::distribute_traced`] or let the first `redistribute` fall back
/// and prime it. A memo is tied to the slicer configuration and platform
/// it was primed with; mismatches are detected and degrade to a full
/// recompute rather than an error.
#[derive(Debug, Default, Clone)]
pub struct SliceMemo {
    inner: Option<MemoInner>,
}

impl SliceMemo {
    /// An unprimed memo: the next redistribute falls back and primes it.
    pub fn new() -> Self {
        SliceMemo::default()
    }

    /// Returns `true` once a traced run has primed the memo.
    pub fn is_primed(&self) -> bool {
        self.inner.is_some()
    }
}

#[derive(Debug, Clone)]
struct MemoInner {
    fingerprint: Fingerprint,
    graph_sig: GraphSig,
    exp: ExpandedGraph,
    vweights: Vec<f64>,
    trace: Vec<IterationTrace>,
    search: PathSearch,
}

/// The configuration a memo was primed under. Virtual times are compared
/// per node separately, so metric *parameters* (e.g. a THRES surplus) need
/// not be captured here — only inputs that could change behaviour while
/// leaving every virtual time bit-identical.
#[derive(Debug, Clone, PartialEq)]
struct Fingerprint {
    metric: String,
    estimate: &'static str,
    rule: ShareRule,
    strict: bool,
    platform: Platform,
}

/// The task-graph inputs the expanded graph's *shape and communication
/// weights* are a function of (together with the platform and estimate,
/// which the [`Fingerprint`] pins). While this signature holds, the
/// memoized [`ExpandedGraph`] is valid verbatim except for task-node
/// weights, which are re-read from the graph.
#[derive(Debug, Clone, PartialEq, Eq)]
struct GraphSig {
    subtasks: usize,
    edges: Vec<(u32, u32, u64)>,
}

impl GraphSig {
    fn of(graph: &TaskGraph) -> Self {
        GraphSig {
            subtasks: graph.subtask_count(),
            edges: graph
                .edge_ids()
                .map(|eid| {
                    let e = graph.edge(eid);
                    (e.src().index() as u32, e.dst().index() as u32, e.items())
                })
                .collect(),
        }
    }
}

/// One iteration of a traced run: the slicing state at its start plus the
/// local winner (and read set) of every per-start search.
#[derive(Debug, Clone)]
struct IterationTrace {
    assigned: Vec<bool>,
    rel: Vec<Option<Time>>,
    dl: Vec<Option<Time>>,
    /// Ascending by start node.
    candidates: Vec<StartCandidate>,
    /// Bitset over expanded nodes: union of every candidate's read set.
    /// A weight-dirty node outside it cannot invalidate any cached search
    /// of this iteration, letting a matched replay skip the per-candidate
    /// checks entirely.
    dep_union: Vec<u64>,
    /// Bitset over expanded nodes: union of every recorded winner's path
    /// — the corresponding whole-iteration screen for decreased weights
    /// held at winner strength.
    path_union: Vec<u64>,
}

/// The whole-iteration read-set and winner-path unions of `cands`.
fn unions(cands: &[StartCandidate], words: usize) -> (Vec<u64>, Vec<u64>) {
    let mut dep_union = vec![0u64; words];
    let mut path_union = vec![0u64; words];
    for c in cands {
        for (u, d) in dep_union.iter_mut().zip(&c.dep) {
            *u |= d;
        }
        if let Some(cp) = &c.cand {
            for &v in &cp.nodes {
                path_union[v >> 6] |= 1u64 << (v & 63);
            }
        }
    }
    (dep_union, path_union)
}

#[derive(Debug, Clone)]
struct StartCandidate {
    start: u32,
    /// Bitset over expanded nodes: every node whose mutable state the
    /// search from `start` read.
    dep: Vec<u64>,
    cand: Option<CriticalPath>,
}

/// Counters from one [`Slicer::redistribute`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RedistributeStats {
    /// Per-start searches answered from the memo.
    pub cache_hits: u64,
    /// Per-start searches that ran the DP live.
    pub cache_misses: u64,
    /// Dirty (node, iteration) pairs across all diffed iterations.
    pub dirty_nodes: u64,
    /// Scanned (node, iteration) pairs — the denominator for
    /// [`dirty_frac`](Self::dirty_frac). Iterations fast-forwarded on the
    /// matched prefix are not diffed and contribute nothing here.
    pub scanned_nodes: u64,
    /// Whether the call fell back to a full traced recompute.
    pub fell_back: bool,
}

impl RedistributeStats {
    /// Fraction of scanned per-iteration node states that were dirty
    /// (`0.0` when nothing was scanned).
    pub fn dirty_frac(&self) -> f64 {
        if self.scanned_nodes == 0 {
            0.0
        } else {
            self.dirty_nodes as f64 / self.scanned_nodes as f64
        }
    }
}

/// The result of a [`Slicer::redistribute`] call.
#[derive(Debug)]
pub struct Redistribution {
    /// The new assignment, bit-identical to a from-scratch
    /// [`Slicer::distribute`] over the same graph.
    pub assignment: DeadlineAssignment,
    /// Cache-effectiveness counters for telemetry.
    pub stats: RedistributeStats,
}

/// First index (ascending start order) attaining the strictly smallest
/// score — the same composition rule as the full sweep's `<`.
fn best_index(cands: &[StartCandidate]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, c) in cands.iter().enumerate() {
        if let Some(cp) = &c.cand {
            if best.is_none_or(|(_, s)| cp.score < s) {
                best = Some((i, cp.score));
            }
        }
    }
    best.map(|(i, _)| i)
}

fn bit(bits: &[u64], v: u32) -> bool {
    bits[(v >> 6) as usize] & (1u64 << (v & 63)) != 0
}

fn path_avoids(cand: &Option<CriticalPath>, bits: &[u64]) -> bool {
    cand.as_ref()
        .is_none_or(|cp| !cp.nodes.iter().any(|&u| bit(bits, u as u32)))
}

/// Whether a cached candidate survives the weight dirt alone: increased
/// (and, when the monotonicity shortcut is unusable, decreased) weights
/// must be outside its read set; under the shortcut the recorded winner
/// must not route through a decreased node. Weight-dirty nodes already
/// assigned are inert — no search reads their weight.
fn weight_clean(
    c: &StartCandidate,
    assigned: &[bool],
    plus: &[u32],
    minus: &[u32],
    minus_bits: &[u64],
    soft: bool,
) -> bool {
    let dep_clear = |list: &[u32]| {
        list.iter()
            .all(|&v| assigned[v as usize] || !bit(&c.dep, v))
    };
    if !dep_clear(plus) {
        return false;
    }
    if soft {
        path_avoids(&c.cand, minus_bits)
    } else {
        dep_clear(minus)
    }
}

/// Every admissible window is non-negative iff the smallest unassigned
/// deadline anchor is at or after the largest unassigned release anchor.
/// This is the soundness gate for treating weight decreases at winner
/// strength under `ShareRule::Proportional` (score `(W-T)/T` is only
/// monotone in `T` for `W ≥ 0`).
fn windows_nonneg(state: &SliceState) -> bool {
    let (mut min_dl, mut max_rel) = (i64::MAX, i64::MIN);
    for v in 0..state.assigned.len() {
        if state.assigned[v] {
            continue;
        }
        if let Some(r) = state.rel[v] {
            max_rel = max_rel.max(r.as_i64());
        }
        if let Some(d) = state.dl[v] {
            min_dl = min_dl.min(d.as_i64());
        }
    }
    min_dl == i64::MAX || max_rel == i64::MIN || min_dl >= max_rel
}

impl Slicer {
    /// [`distribute`](Slicer::distribute), additionally priming `memo` so a
    /// later [`redistribute`](Slicer::redistribute) can reuse this run.
    ///
    /// The produced assignment is bit-identical to a plain `distribute`
    /// over the same inputs (the trace records reads; it never alters the
    /// search).
    ///
    /// # Errors
    ///
    /// Exactly those of [`distribute`](Slicer::distribute).
    pub fn distribute_traced(
        &self,
        graph: &TaskGraph,
        platform: &Platform,
        memo: &mut SliceMemo,
    ) -> Result<DeadlineAssignment, SliceError> {
        memo.inner = None;
        let mut stats = RedistributeStats {
            fell_back: true,
            ..RedistributeStats::default()
        };
        self.run_traced(graph, platform, memo, &mut stats)
    }

    /// Recomputes the deadline assignment for `graph` — typically the
    /// output of [`GraphDelta::apply`](crate::GraphDelta::apply) on the
    /// memoized run's graph — reusing every per-start search whose read
    /// set the delta left untouched.
    ///
    /// The result is bit-identical to `self.distribute(graph, platform)`;
    /// only the work performed differs. `memo` is refreshed to describe
    /// this run, so deltas can be chained. See this module's source
    /// docs for the dirty-set rules and fallback conditions.
    ///
    /// # Errors
    ///
    /// Exactly those of [`distribute`](Slicer::distribute).
    pub fn redistribute(
        &self,
        graph: &TaskGraph,
        platform: &Platform,
        memo: &mut SliceMemo,
    ) -> Result<Redistribution, SliceError> {
        let mut stats = RedistributeStats::default();
        let fingerprint = self.fingerprint(platform);
        let reusable = match &memo.inner {
            Some(inner) => inner.fingerprint == fingerprint,
            None => false,
        };
        if !reusable {
            memo.inner = None;
        }
        stats.fell_back = memo.inner.is_none();
        let assignment = self.run_traced(graph, platform, memo, &mut stats)?;
        Ok(Redistribution { assignment, stats })
    }

    fn fingerprint(&self, platform: &Platform) -> Fingerprint {
        Fingerprint {
            metric: self.metric_name().to_owned(),
            estimate: self.estimate_label(),
            rule: self.metric().share_rule(),
            strict: self.strict(),
            platform: platform.clone(),
        }
    }

    /// The traced slicing loop: runs over `graph`, consuming whatever
    /// usable memo state exists (structure still has to match — checked
    /// here) and leaving `memo` primed with this run.
    fn run_traced(
        &self,
        graph: &TaskGraph,
        platform: &Platform,
        memo: &mut SliceMemo,
        stats: &mut RedistributeStats,
    ) -> Result<DeadlineAssignment, SliceError> {
        let _span = tracing::debug_span!(
            "redistribute",
            metric = self.metric_name(),
            estimate = self.estimate_label(),
            subtasks = graph.subtask_count()
        )
        .entered();

        let ctx = MetricContext::for_workload(graph, platform);
        let rule = self.metric().share_rule();
        let sig = GraphSig::of(graph);

        // A structural change invalidates every recorded read set (node
        // indices shift, reachability changes): drop the old trace and run
        // everything live, which primes the memo for the next delta. An
        // unchanged subtask/edge signature goes further: the memoized
        // expanded graph is node-for-node identical (the fingerprint pins
        // the platform and estimate, so every communication weight is
        // too), and the rebuild is skipped entirely.
        let (exp, old_trace, old_vweights, mut search) = match memo.inner.take() {
            Some(inner) if inner.graph_sig == sig => {
                (inner.exp, inner.trace, inner.vweights, inner.search)
            }
            Some(inner) => {
                let exp = ExpandedGraph::build(graph, self.estimate(), platform);
                if inner.exp.same_structure(&exp) {
                    (exp, inner.trace, inner.vweights, inner.search)
                } else {
                    stats.fell_back = true;
                    let (nodes, chain) = (exp.len(), exp.max_chain());
                    (exp, Vec::new(), Vec::new(), PathSearch::new(nodes, chain))
                }
            }
            None => {
                let exp = ExpandedGraph::build(graph, self.estimate(), platform);
                stats.fell_back = true;
                let (nodes, chain) = (exp.len(), exp.max_chain());
                (exp, Vec::new(), Vec::new(), PathSearch::new(nodes, chain))
            }
        };

        let n = exp.len();
        let words = n.div_ceil(64);
        // Task-node weights come from the (possibly mutated) graph, not
        // the expanded graph, which may be the memoized one.
        let vweights: Vec<f64> = (0..n)
            .map(|v| {
                let w = match exp.kind(v) {
                    ExpKind::Task(id) => graph.subtask(id).wcet(),
                    ExpKind::Comm(_) => exp.weight(v),
                };
                self.metric().virtual_time(w, &ctx)
            })
            .collect();

        // Weight dirt for the whole call, split by direction (see module
        // docs): decreases invalidate at winner strength, everything else
        // at read-set strength.
        let mut w_minus = vec![0u64; words];
        let mut w_plus = vec![0u64; words];
        let mut w_minus_list: Vec<u32> = Vec::new();
        let mut w_plus_list: Vec<u32> = Vec::new();
        for v in 0..old_vweights.len() {
            let (new, old) = (vweights[v], old_vweights[v]);
            if new.to_bits() != old.to_bits() {
                if new < old {
                    w_minus[v >> 6] |= 1u64 << (v & 63);
                    w_minus_list.push(v as u32);
                } else {
                    w_plus[v >> 6] |= 1u64 << (v & 63);
                    w_plus_list.push(v as u32);
                }
            }
        }

        let mut state = SliceState::init(graph, &exp);
        let mut new_trace: Vec<IterationTrace> = Vec::with_capacity(old_trace.len().max(8));
        let mut old_iters = old_trace.into_iter();
        let mut dirty = vec![0u64; words];
        let mut rel_val = vec![0u64; words];
        let mut dl_val = vec![0u64; words];
        let mut path_weights: Vec<f64> = Vec::new();
        let mut slices: Vec<Window> = Vec::new();
        let mut paths = 0usize;
        // Whether the state provably equals the old snapshot for the
        // current iteration (assigned flags plus every unassigned anchor).
        // Maintained inductively while the chosen winner is the old one
        // and off every weight-dirty node; re-proven by the diff after a
        // divergence.
        let mut matched = false;

        while state.remaining > 0 {
            let Some(old) = old_iters.next() else {
                // The old run finished earlier (or there is no trace):
                // everything left runs live.
                if !search.classify(n, &state.assigned, &state.rel, &state.dl) {
                    return Err(SliceError::NoAnchoredPath);
                }
                let mut candidates: Vec<StartCandidate> = Vec::with_capacity(4);
                for s in 0..n {
                    if state.assigned[s] || state.rel[s].is_none() {
                        continue;
                    }
                    stats.cache_misses += 1;
                    let start_release = state.rel[s].expect("checked above");
                    let mut dep = vec![0u64; words];
                    let cand = search.search_from(
                        &exp,
                        &vweights,
                        &state.dl,
                        s,
                        start_release,
                        rule,
                        Some(&mut dep),
                    );
                    candidates.push(StartCandidate {
                        start: s as u32,
                        dep,
                        cand,
                    });
                }
                let best = best_index(&candidates).ok_or(SliceError::NoAnchoredPath)?;
                let cp = candidates[best]
                    .cand
                    .clone()
                    .expect("best candidate is Some");
                let (dep_union, path_union) = unions(&candidates, words);
                new_trace.push(IterationTrace {
                    assigned: state.assigned.clone(),
                    rel: state.rel.clone(),
                    dl: state.dl.clone(),
                    candidates,
                    dep_union,
                    path_union,
                });
                paths += 1;
                apply_path(
                    &exp,
                    &vweights,
                    rule,
                    &cp,
                    &mut state,
                    &mut path_weights,
                    &mut slices,
                    paths,
                );
                continue;
            };

            let IterationTrace {
                assigned: old_assigned,
                rel: old_rel,
                dl: old_dl,
                candidates: old_cands,
                dep_union: old_dep_union,
                path_union: old_path_union,
            } = old;

            // Lazily computed Proportional gate (see `windows_nonneg`);
            // the diff below folds it in for free when it runs.
            let mut gate: Option<bool> = None;

            if !matched {
                dirty.fill(0);
                rel_val.fill(0);
                dl_val.fill(0);
                let mut dirt = 0u64;
                let (mut min_dl, mut max_rel) = (i64::MAX, i64::MIN);
                for v in 0..n {
                    // Hard dirt: a flag any exploring search branches on
                    // flipped. Value dirt: the node stayed anchored but the
                    // anchor moved — observable only by a search starting
                    // there (release) or reaching it as an endpoint
                    // (deadline).
                    let mut hard = state.assigned[v] != old_assigned[v];
                    let mut val = false;
                    if !hard && !state.assigned[v] {
                        match (state.rel[v], old_rel[v]) {
                            (Some(a), Some(b)) if a != b => {
                                rel_val[v >> 6] |= 1u64 << (v & 63);
                                val = true;
                            }
                            (a, b) if a.is_some() != b.is_some() => hard = true,
                            _ => {}
                        }
                        match (state.dl[v], old_dl[v]) {
                            (Some(a), Some(b)) if a != b => {
                                dl_val[v >> 6] |= 1u64 << (v & 63);
                                val = true;
                            }
                            (a, b) if a.is_some() != b.is_some() => hard = true,
                            _ => {}
                        }
                    }
                    if !state.assigned[v] {
                        if let Some(r) = state.rel[v] {
                            max_rel = max_rel.max(r.as_i64());
                        }
                        if let Some(d) = state.dl[v] {
                            min_dl = min_dl.min(d.as_i64());
                        }
                    }
                    if hard {
                        dirty[v >> 6] |= 1u64 << (v & 63);
                    }
                    if hard || val {
                        dirt += 1;
                    }
                }
                stats.scanned_nodes += n as u64;
                stats.dirty_nodes += dirt;
                matched = dirt == 0;
                gate = Some(min_dl == i64::MAX || max_rel == i64::MIN || min_dl >= max_rel);
            }

            let minus_live = w_minus_list.iter().any(|&v| !state.assigned[v as usize]);
            let plus_live = w_plus_list.iter().any(|&v| !state.assigned[v as usize]);
            // Winner-strength handling of decreases needs the score to be
            // monotone in total weight: unconditional for EqualShare,
            // window-gated for Proportional.
            let soft = minus_live
                && (rule == ShareRule::EqualShare
                    || *gate.get_or_insert_with(|| windows_nonneg(&state)));

            if matched {
                // The state equals the old snapshot, so the start set and
                // every anchor any search reads are the old run's: only
                // weight dirt can invalidate, and with none live the whole
                // iteration fast-forwards.
                // Whole-iteration screen first: weight dirt outside the
                // recorded read-set (resp. winner-path) union cannot touch
                // any cached search, so the per-candidate checks — the
                // dominant cost of a fast-forwarded iteration — are skipped
                // for the overwhelmingly common off-cone iteration.
                let clear = |v: u32, bits: &[u64]| state.assigned[v as usize] || !bit(bits, v);
                let union_clear = w_plus_list.iter().all(|&v| clear(v, &old_dep_union))
                    && w_minus_list.iter().all(|&v| {
                        clear(
                            v,
                            if soft {
                                &old_path_union
                            } else {
                                &old_dep_union
                            },
                        )
                    });
                let all_hit = (!minus_live && !plus_live)
                    || union_clear
                    || old_cands.iter().all(|c| {
                        weight_clean(
                            c,
                            &state.assigned,
                            &w_plus_list,
                            &w_minus_list,
                            &w_minus,
                            soft,
                        )
                    });
                if all_hit {
                    stats.cache_hits += old_cands.len() as u64;
                    let best = best_index(&old_cands).ok_or(SliceError::NoAnchoredPath)?;
                    {
                        let cp = old_cands[best]
                            .cand
                            .as_ref()
                            .expect("best candidate is Some");
                        paths += 1;
                        apply_path(
                            &exp,
                            &vweights,
                            rule,
                            cp,
                            &mut state,
                            &mut path_weights,
                            &mut slices,
                            paths,
                        );
                    }
                    new_trace.push(IterationTrace {
                        assigned: old_assigned,
                        rel: old_rel,
                        dl: old_dl,
                        candidates: old_cands,
                        dep_union: old_dep_union,
                        path_union: old_path_union,
                    });
                    continue;
                }

                // Some start must re-search. The chosen winner decides
                // whether the state keeps tracking the old run: the old
                // winner, off every weight-dirty node, evolves both runs
                // identically.
                let old_best = best_index(&old_cands)
                    .map(|i| old_cands[i].cand.clone().expect("best candidate is Some"));
                if !search.classify(n, &state.assigned, &state.rel, &state.dl) {
                    return Err(SliceError::NoAnchoredPath);
                }
                let mut candidates: Vec<StartCandidate> = Vec::with_capacity(old_cands.len());
                for c in old_cands {
                    if weight_clean(
                        &c,
                        &state.assigned,
                        &w_plus_list,
                        &w_minus_list,
                        &w_minus,
                        soft,
                    ) {
                        stats.cache_hits += 1;
                        candidates.push(c);
                    } else {
                        stats.cache_misses += 1;
                        let s = c.start as usize;
                        let start_release =
                            state.rel[s].expect("cached starts are release-anchored");
                        let mut dep = vec![0u64; words];
                        let cand = search.search_from(
                            &exp,
                            &vweights,
                            &state.dl,
                            s,
                            start_release,
                            rule,
                            Some(&mut dep),
                        );
                        candidates.push(StartCandidate {
                            start: c.start,
                            dep,
                            cand,
                        });
                    }
                }
                let best = best_index(&candidates).ok_or(SliceError::NoAnchoredPath)?;
                let cp = candidates[best]
                    .cand
                    .clone()
                    .expect("best candidate is Some");
                matched = old_best.as_ref() == Some(&cp)
                    && !cp
                        .nodes
                        .iter()
                        .any(|&u| bit(&w_minus, u as u32) || bit(&w_plus, u as u32));
                let (dep_union, path_union) = unions(&candidates, words);
                new_trace.push(IterationTrace {
                    assigned: old_assigned,
                    rel: old_rel,
                    dl: old_dl,
                    candidates,
                    dep_union,
                    path_union,
                });
                paths += 1;
                apply_path(
                    &exp,
                    &vweights,
                    rule,
                    &cp,
                    &mut state,
                    &mut path_weights,
                    &mut slices,
                    paths,
                );
                continue;
            }

            // Diverged: per-candidate reuse against the freshly diffed
            // dirty set, with the live weight dirt folded in at read-set
            // strength (decreases stay at winner strength while `soft`).
            for &v in &w_plus_list {
                if !state.assigned[v as usize] && !bit(&dirty, v) {
                    dirty[(v >> 6) as usize] |= 1u64 << (v & 63);
                    stats.dirty_nodes += 1;
                }
            }
            if !soft {
                for &v in &w_minus_list {
                    if !state.assigned[v as usize] && !bit(&dirty, v) {
                        dirty[(v >> 6) as usize] |= 1u64 << (v & 63);
                        stats.dirty_nodes += 1;
                    }
                }
            }

            if !search.classify(n, &state.assigned, &state.rel, &state.dl) {
                return Err(SliceError::NoAnchoredPath);
            }

            let mut old_cands = old_cands;
            let mut candidates: Vec<StartCandidate> = Vec::with_capacity(old_cands.len().max(4));
            let mut old_pos = 0usize;
            for s in 0..n {
                if state.assigned[s] || state.rel[s].is_none() {
                    continue;
                }
                while old_pos < old_cands.len() && (old_cands[old_pos].start as usize) < s {
                    old_pos += 1;
                }
                let hit = old_pos < old_cands.len() && old_cands[old_pos].start as usize == s && {
                    let c = &old_cands[old_pos];
                    !bit(&rel_val, s as u32)
                        && c.dep.iter().zip(&dirty).all(|(d, x)| d & x == 0)
                        && c.dep.iter().zip(&dl_val).all(|(d, x)| d & x == 0)
                        && (!soft || path_avoids(&c.cand, &w_minus))
                };

                let entry = if hit {
                    stats.cache_hits += 1;
                    // Move (not copy) the recorded winner and read set into
                    // the new trace; each old entry is consumed at most
                    // once because `old_pos` only advances.
                    let c = &mut old_cands[old_pos];
                    StartCandidate {
                        start: s as u32,
                        dep: std::mem::take(&mut c.dep),
                        cand: c.cand.take(),
                    }
                } else {
                    stats.cache_misses += 1;
                    let start_release = state.rel[s].expect("checked above");
                    let mut dep = vec![0u64; words];
                    let cand = search.search_from(
                        &exp,
                        &vweights,
                        &state.dl,
                        s,
                        start_release,
                        rule,
                        Some(&mut dep),
                    );
                    StartCandidate {
                        start: s as u32,
                        dep,
                        cand,
                    }
                };
                candidates.push(entry);
            }

            let best = best_index(&candidates).ok_or(SliceError::NoAnchoredPath)?;
            let cp = candidates[best]
                .cand
                .clone()
                .expect("best candidate is Some");

            // Snapshot the state *at iteration start* (unchanged so far)
            // together with this iteration's candidates, then advance.
            let (dep_union, path_union) = unions(&candidates, words);
            new_trace.push(IterationTrace {
                assigned: state.assigned.clone(),
                rel: state.rel.clone(),
                dl: state.dl.clone(),
                candidates,
                dep_union,
                path_union,
            });
            paths += 1;
            apply_path(
                &exp,
                &vweights,
                rule,
                &cp,
                &mut state,
                &mut path_weights,
                &mut slices,
                paths,
            );
        }

        tracing::debug!(
            paths = paths,
            inverted = state.inverted,
            expanded_nodes = n,
            cache_hits = stats.cache_hits,
            cache_misses = stats.cache_misses,
            fell_back = stats.fell_back,
            "incremental deadline distribution complete"
        );

        let assignment = finalize(self, graph, &exp, state)?;
        memo.inner = Some(MemoInner {
            fingerprint: self.fingerprint(platform),
            graph_sig: sig,
            exp,
            vweights,
            trace: new_trace,
            search,
        });
        Ok(assignment)
    }
}

#[cfg(test)]
mod tests {
    use platform::Pinning;
    use taskgraph::{Subtask, SubtaskId};

    use super::*;
    use crate::GraphDelta;

    fn chain(wcets: &[i64], deadline: i64) -> TaskGraph {
        let mut b = TaskGraph::builder();
        let mut prev = None;
        for (i, &c) in wcets.iter().enumerate() {
            let mut s = Subtask::new(Time::new(c));
            if i == 0 {
                s = s.released_at(Time::ZERO);
            }
            if i + 1 == wcets.len() {
                s = s.due_at(Time::new(deadline));
            }
            let id = b.add_subtask(s);
            if let Some(p) = prev {
                b.add_edge(p, id, 10).unwrap();
            }
            prev = Some(id);
        }
        b.build().unwrap()
    }

    #[test]
    fn traced_distribute_matches_plain_distribute() {
        let g = chain(&[10, 30, 20], 120);
        let p = Platform::paper(2).unwrap();
        for slicer in [Slicer::bst_pure(), Slicer::bst_norm(), Slicer::ast_adapt()] {
            let plain = slicer.distribute(&g, &p).unwrap();
            let mut memo = SliceMemo::new();
            let traced = slicer.distribute_traced(&g, &p, &mut memo).unwrap();
            assert_eq!(plain, traced);
            assert!(memo.is_primed());
        }
    }

    #[test]
    fn redistribute_after_wcet_delta_is_bit_identical() {
        let g = chain(&[10, 30, 20, 40, 15], 400);
        let p = Platform::paper(4).unwrap();
        let slicer = Slicer::bst_pure();
        let mut memo = SliceMemo::new();
        slicer.distribute_traced(&g, &p, &mut memo).unwrap();

        let delta = GraphDelta::new().set_wcet(SubtaskId::new(2), Time::new(35));
        let applied = delta.apply(&g, &Pinning::new()).unwrap();
        let red = slicer.redistribute(&applied.graph, &p, &mut memo).unwrap();
        let scratch = slicer.distribute(&applied.graph, &p).unwrap();
        assert_eq!(red.assignment, scratch);
        assert!(!red.stats.fell_back);
        assert!(red.stats.scanned_nodes > 0);
    }

    #[test]
    fn identity_delta_hits_every_cached_search() {
        let g = chain(&[10, 30, 20, 40, 15], 400);
        let p = Platform::paper(4).unwrap();
        let slicer = Slicer::bst_pure();
        let mut memo = SliceMemo::new();
        let primed = slicer.distribute_traced(&g, &p, &mut memo).unwrap();
        let red = slicer.redistribute(&g, &p, &mut memo).unwrap();
        assert_eq!(red.assignment, primed);
        assert_eq!(red.stats.cache_misses, 0);
        assert!(red.stats.cache_hits > 0);
        assert_eq!(red.stats.dirty_nodes, 0);
        assert_eq!(red.stats.dirty_frac(), 0.0);
    }

    #[test]
    fn structural_delta_falls_back_but_stays_correct() {
        let g = chain(&[10, 30, 20], 300);
        let p = Platform::paper(2).unwrap();
        let slicer = Slicer::bst_pure();
        let mut memo = SliceMemo::new();
        slicer.distribute_traced(&g, &p, &mut memo).unwrap();

        let delta = GraphDelta::new()
            .add_subtask(Subtask::new(Time::new(12)).due_at(Time::new(280)))
            .add_edge(SubtaskId::new(1), SubtaskId::new(3), 4);
        let applied = delta.apply(&g, &Pinning::new()).unwrap();
        let red = slicer.redistribute(&applied.graph, &p, &mut memo).unwrap();
        assert!(red.stats.fell_back);
        assert_eq!(red.stats.cache_hits, 0);
        let scratch = slicer.distribute(&applied.graph, &p).unwrap();
        assert_eq!(red.assignment, scratch);

        // The fallback primed the memo: a follow-up WCET delta is
        // incremental again.
        let delta2 = GraphDelta::new().set_wcet(SubtaskId::new(0), Time::new(11));
        let applied2 = delta2.apply(&applied.graph, &Pinning::new()).unwrap();
        let red2 = slicer.redistribute(&applied2.graph, &p, &mut memo).unwrap();
        assert!(!red2.stats.fell_back);
        assert_eq!(
            red2.assignment,
            slicer.distribute(&applied2.graph, &p).unwrap()
        );
    }

    #[test]
    fn unprimed_memo_falls_back_and_primes() {
        let g = chain(&[10, 30], 100);
        let p = Platform::paper(2).unwrap();
        let slicer = Slicer::bst_pure();
        let mut memo = SliceMemo::new();
        assert!(!memo.is_primed());
        let red = slicer.redistribute(&g, &p, &mut memo).unwrap();
        assert!(red.stats.fell_back);
        assert!(memo.is_primed());
        assert_eq!(red.assignment, slicer.distribute(&g, &p).unwrap());
    }

    #[test]
    fn configuration_change_falls_back() {
        let g = chain(&[10, 30, 20], 120);
        let p = Platform::paper(2).unwrap();
        let mut memo = SliceMemo::new();
        Slicer::bst_pure()
            .distribute_traced(&g, &p, &mut memo)
            .unwrap();
        // Different metric, same memo: must fall back, not corrupt.
        let red = Slicer::bst_norm().redistribute(&g, &p, &mut memo).unwrap();
        assert!(red.stats.fell_back);
        assert_eq!(
            red.assignment,
            Slicer::bst_norm().distribute(&g, &p).unwrap()
        );
        // Different processor count likewise (ADAPT reads it).
        let p8 = Platform::paper(8).unwrap();
        let mut memo = SliceMemo::new();
        Slicer::ast_adapt()
            .distribute_traced(&g, &p, &mut memo)
            .unwrap();
        let red = Slicer::ast_adapt()
            .redistribute(&g, &p8, &mut memo)
            .unwrap();
        assert!(red.stats.fell_back);
        assert_eq!(
            red.assignment,
            Slicer::ast_adapt().distribute(&g, &p8).unwrap()
        );
    }

    /// Two parallel branches between a forked source and a joined sink:
    /// per-start winners can avoid a perturbed branch, exercising the
    /// winner-strength (path containment) shortcut for weight decreases.
    fn forked(wcets: &[i64; 7], deadline: i64) -> TaskGraph {
        let mut b = TaskGraph::builder();
        let ids: Vec<SubtaskId> = wcets
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let mut s = Subtask::new(Time::new(c));
                if i == 0 {
                    s = s.released_at(Time::ZERO);
                }
                if i >= 5 {
                    s = s.due_at(Time::new(deadline));
                }
                b.add_subtask(s)
            })
            .collect();
        // 0 -> {1 -> 2, 3 -> 4} -> 5, plus an independent sink 4 -> 6.
        b.add_edge(ids[0], ids[1], 5).unwrap();
        b.add_edge(ids[1], ids[2], 5).unwrap();
        b.add_edge(ids[0], ids[3], 5).unwrap();
        b.add_edge(ids[3], ids[4], 5).unwrap();
        b.add_edge(ids[2], ids[5], 5).unwrap();
        b.add_edge(ids[4], ids[5], 5).unwrap();
        b.add_edge(ids[4], ids[6], 5).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn wcet_tightenings_stay_bit_identical_across_metrics() {
        let g = forked(&[10, 40, 25, 30, 35, 20, 15], 400);
        let p = Platform::paper(3).unwrap();
        for slicer in [
            Slicer::bst_pure(),
            Slicer::bst_norm(),
            Slicer::ast_thres(1.0),
            Slicer::ast_adapt(),
        ] {
            let mut memo = SliceMemo::new();
            slicer.distribute_traced(&g, &p, &mut memo).unwrap();
            let mut current = g.clone();
            // Tighten one node per step, walking across both branches.
            for (node, wcet) in [(1u32, 32i64), (4, 28), (3, 22), (1, 30)] {
                let delta = GraphDelta::new().set_wcet(SubtaskId::new(node), Time::new(wcet));
                current = delta.apply(&current, &Pinning::new()).unwrap().graph;
                let red = slicer.redistribute(&current, &p, &mut memo).unwrap();
                assert!(!red.stats.fell_back);
                assert_eq!(
                    red.assignment,
                    slicer.distribute(&current, &p).unwrap(),
                    "metric {}",
                    slicer.metric_name()
                );
            }
        }
    }

    #[test]
    fn inverted_window_decrease_under_norm_stays_bit_identical() {
        // The sink is due *before* the source releases, so every window is
        // negative and the Proportional monotonicity gate must demote
        // decreases to read-set strength — correctness must survive.
        let mut b = TaskGraph::builder();
        let a = b.add_subtask(Subtask::new(Time::new(30)).released_at(Time::new(100)));
        let c = b.add_subtask(Subtask::new(Time::new(20)));
        let d = b.add_subtask(Subtask::new(Time::new(25)).due_at(Time::new(50)));
        b.add_edge(a, c, 5).unwrap();
        b.add_edge(c, d, 5).unwrap();
        let g = b.build().unwrap();
        let p = Platform::paper(2).unwrap();
        let slicer = Slicer::bst_norm();
        let mut memo = SliceMemo::new();
        slicer.distribute_traced(&g, &p, &mut memo).unwrap();
        let delta = GraphDelta::new().set_wcet(SubtaskId::new(1), Time::new(12));
        let mutated = delta.apply(&g, &Pinning::new()).unwrap().graph;
        let red = slicer.redistribute(&mutated, &p, &mut memo).unwrap();
        assert!(!red.stats.fell_back);
        assert_eq!(red.assignment, slicer.distribute(&mutated, &p).unwrap());
    }

    #[test]
    fn anchor_deltas_stay_bit_identical() {
        let g = forked(&[10, 40, 25, 30, 35, 20, 15], 400);
        let p = Platform::paper(3).unwrap();
        let slicer = Slicer::ast_thres(1.0);
        let mut memo = SliceMemo::new();
        slicer.distribute_traced(&g, &p, &mut memo).unwrap();
        // Anchor value changes perturb the very first iteration's state, so
        // the replay starts diverged and must reconverge (or re-search) —
        // either way the result must be exact.
        let delta = GraphDelta::new()
            .set_deadline(SubtaskId::new(5), Some(Time::new(380)))
            .set_release(SubtaskId::new(0), Some(Time::new(4)));
        let mutated = delta.apply(&g, &Pinning::new()).unwrap().graph;
        let red = slicer.redistribute(&mutated, &p, &mut memo).unwrap();
        assert!(!red.stats.fell_back);
        assert_eq!(red.assignment, slicer.distribute(&mutated, &p).unwrap());
        // And a follow-up WCET tightening chains off the refreshed memo.
        let delta2 = GraphDelta::new().set_wcet(SubtaskId::new(3), Time::new(24));
        let mutated2 = delta2.apply(&mutated, &Pinning::new()).unwrap().graph;
        let red2 = slicer.redistribute(&mutated2, &p, &mut memo).unwrap();
        assert!(!red2.stats.fell_back);
        assert_eq!(red2.assignment, slicer.distribute(&mutated2, &p).unwrap());
    }

    #[test]
    fn chained_deltas_stay_bit_identical() {
        let g = chain(&[10, 30, 20, 40, 15, 25], 500);
        let p = Platform::paper(4).unwrap();
        let slicer = Slicer::ast_adapt();
        let mut memo = SliceMemo::new();
        slicer.distribute_traced(&g, &p, &mut memo).unwrap();
        let mut current = g;
        for (node, wcet) in [(1u32, 45i64), (3, 10), (1, 30), (5, 60)] {
            let delta = GraphDelta::new().set_wcet(SubtaskId::new(node), Time::new(wcet));
            current = delta.apply(&current, &Pinning::new()).unwrap().graph;
            let red = slicer.redistribute(&current, &p, &mut memo).unwrap();
            assert!(!red.stats.fell_back);
            assert_eq!(red.assignment, slicer.distribute(&current, &p).unwrap());
        }
    }
}
