//! The adaptive laxity ratio (ADAPT) metric of AST.

use taskgraph::Time;

use crate::{MetricContext, ShareRule, SliceMetric, ThresholdSpec};

/// The *adaptive laxity ratio* metric: THRES whose surplus factor adapts to
/// the degree of task-graph parallelism that the system can exploit:
///
/// ```text
/// c'_i = c_i                      if c_i < c_thres
/// c'_i = c_i (1 + ξ / N_proc)     if c_i ≥ c_thres
/// ```
///
/// where ξ is the average task-graph parallelism (total workload over
/// longest-path length) and N_proc the number of processors. On small
/// systems (ξ ≫ N_proc) long subtasks receive generous extra slack to ride
/// out contention; as the system grows the surplus vanishes and ADAPT
/// converges to PURE (§7, Figure 5).
///
/// # Examples
///
/// ```
/// use slicing::{metrics::Adapt, MetricContext, SliceMetric, ThresholdSpec};
/// use taskgraph::Time;
///
/// let ctx = MetricContext { mean_exec_time: 20.0, avg_parallelism: 4.0, processors: 2 };
/// let adapt = Adapt::paper();
/// // surplus = 4/2 = 2 above the threshold (25):
/// assert_eq!(adapt.virtual_time(Time::new(30), &ctx), 90.0);
/// assert_eq!(adapt.virtual_time(Time::new(20), &ctx), 20.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Adapt {
    threshold: ThresholdSpec,
}

impl Adapt {
    /// Creates an ADAPT metric with the given execution-time threshold.
    pub fn new(threshold: ThresholdSpec) -> Self {
        Adapt { threshold }
    }

    /// The paper's configuration: c_thres = 1.25 × MET.
    pub fn paper() -> Self {
        Adapt::new(ThresholdSpec::PAPER)
    }

    /// The execution-time threshold specification.
    pub fn threshold(&self) -> ThresholdSpec {
        self.threshold
    }
}

impl Default for Adapt {
    fn default() -> Self {
        Adapt::paper()
    }
}

impl SliceMetric for Adapt {
    fn name(&self) -> &str {
        "ADAPT"
    }

    fn virtual_time(&self, real: Time, ctx: &MetricContext) -> f64 {
        let c = real.as_f64();
        if c >= self.threshold.resolve(ctx) {
            c * (1.0 + ctx.adaptive_surplus())
        } else {
            c
        }
    }

    fn share_rule(&self) -> ShareRule {
        ShareRule::EqualShare
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::test_ctx;

    #[test]
    fn surplus_tracks_parallelism_over_processors() {
        let mut ctx = test_ctx(); // xi = 4, N = 2 => surplus 2
        let m = Adapt::paper();
        assert_eq!(m.virtual_time(Time::new(30), &ctx), 90.0);
        // Grow the system: surplus shrinks toward zero.
        ctx.processors = 16;
        let inflated = m.virtual_time(Time::new(30), &ctx);
        assert!((inflated - 30.0 * 1.25).abs() < 1e-12);
        // And ADAPT approaches PURE behaviour.
        ctx.processors = 1_000_000;
        assert!((m.virtual_time(Time::new(30), &ctx) - 30.0).abs() < 1e-3);
    }

    #[test]
    fn below_threshold_unchanged() {
        let ctx = test_ctx();
        let m = Adapt::paper();
        assert_eq!(m.virtual_time(Time::new(24), &ctx), 24.0);
        assert_eq!(m.name(), "ADAPT");
        assert_eq!(m.share_rule(), ShareRule::EqualShare);
        assert_eq!(Adapt::default(), Adapt::paper());
        assert_eq!(m.threshold(), ThresholdSpec::PAPER);
    }
}
