//! The threshold laxity ratio (THRES) metric of AST.

use taskgraph::Time;

use crate::{MetricContext, ShareRule, SliceMetric, ThresholdSpec};

/// The *threshold laxity ratio* metric: PURE over **virtual** execution
/// times, where subtasks at or above the execution-time threshold c_thres
/// appear inflated by a fixed surplus factor Δ:
///
/// ```text
/// c'_i = c_i            if c_i < c_thres
/// c'_i = c_i (1 + Δ)    if c_i ≥ c_thres
/// ```
///
/// The inflation steers extra slack toward long subtasks, which suffer the
/// most from processor contention when parallelism cannot be fully
/// exploited (§7). The paper finds no universally good Δ: small values win
/// on large systems, large values on small systems (Figure 3).
///
/// # Examples
///
/// ```
/// use slicing::{metrics::Thres, MetricContext, SliceMetric, ThresholdSpec};
/// use taskgraph::Time;
///
/// let ctx = MetricContext { mean_exec_time: 20.0, avg_parallelism: 2.0, processors: 4 };
/// let thres = Thres::new(1.0, ThresholdSpec::PAPER); // c_thres = 25
/// assert_eq!(thres.virtual_time(Time::new(24), &ctx), 24.0);
/// assert_eq!(thres.virtual_time(Time::new(26), &ctx), 52.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Thres {
    surplus: f64,
    threshold: ThresholdSpec,
}

impl Thres {
    /// Creates a THRES metric with surplus factor Δ = `surplus` and the
    /// given threshold.
    ///
    /// # Panics
    ///
    /// Panics if `surplus` is negative or not finite.
    pub fn new(surplus: f64, threshold: ThresholdSpec) -> Self {
        assert!(
            surplus.is_finite() && surplus >= 0.0,
            "surplus factor must be finite and non-negative, got {surplus}"
        );
        Thres { surplus, threshold }
    }

    /// The paper's Figure 5 configuration: Δ = 1, c_thres = 1.25 × MET.
    pub fn paper() -> Self {
        Thres::new(1.0, ThresholdSpec::PAPER)
    }

    /// The surplus factor Δ.
    pub fn surplus(&self) -> f64 {
        self.surplus
    }

    /// The execution-time threshold specification.
    pub fn threshold(&self) -> ThresholdSpec {
        self.threshold
    }
}

impl SliceMetric for Thres {
    fn name(&self) -> &str {
        "THRES"
    }

    fn virtual_time(&self, real: Time, ctx: &MetricContext) -> f64 {
        let c = real.as_f64();
        if c >= self.threshold.resolve(ctx) {
            c * (1.0 + self.surplus)
        } else {
            c
        }
    }

    fn share_rule(&self) -> ShareRule {
        ShareRule::EqualShare
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::test_ctx;

    #[test]
    fn inflates_only_above_threshold() {
        let ctx = test_ctx(); // MET 20 => threshold 25
        let m = Thres::new(2.0, ThresholdSpec::PAPER);
        assert_eq!(m.virtual_time(Time::new(24), &ctx), 24.0);
        assert_eq!(m.virtual_time(Time::new(25), &ctx), 75.0); // boundary inclusive
        assert_eq!(m.virtual_time(Time::new(30), &ctx), 90.0);
        assert_eq!(m.name(), "THRES");
        assert_eq!(m.share_rule(), ShareRule::EqualShare);
    }

    #[test]
    fn zero_surplus_degenerates_to_pure() {
        let ctx = test_ctx();
        let m = Thres::new(0.0, ThresholdSpec::PAPER);
        for c in [1, 20, 25, 40] {
            assert_eq!(m.virtual_time(Time::new(c), &ctx), c as f64);
        }
    }

    #[test]
    fn absolute_threshold() {
        let ctx = test_ctx();
        let m = Thres::new(1.0, ThresholdSpec::Absolute(Time::new(10)));
        assert_eq!(m.virtual_time(Time::new(9), &ctx), 9.0);
        assert_eq!(m.virtual_time(Time::new(10), &ctx), 20.0);
    }

    #[test]
    fn accessors() {
        let m = Thres::paper();
        assert_eq!(m.surplus(), 1.0);
        assert_eq!(m.threshold(), ThresholdSpec::PAPER);
    }

    #[test]
    #[should_panic(expected = "surplus factor")]
    fn rejects_negative_surplus() {
        let _ = Thres::new(-1.0, ThresholdSpec::PAPER);
    }
}
