//! Deadline-distribution metrics: NORM, PURE (BST) and THRES, ADAPT (AST).
//!
//! A metric determines two things about the slicing algorithm:
//!
//! 1. the **virtual execution time** of each (sub)task — how computationally
//!    demanding the task *appears* to the distributor; and
//! 2. the **share rule** — whether path slack is divided proportionally to
//!    virtual execution time (NORM) or as an equal share per path node (the
//!    PURE family).
//!
//! From those the *laxity ratio* R of a candidate path and the relative
//! deadlines of its subtasks follow:
//!
//! * proportional: `R = (D_Φ − Σw) / Σw`, `d_i = w_i · (1 + R)`;
//! * equal share:  `R = (D_Φ − Σw) / n_Φ`, `d_i = w_i + R`.
//!
//! The critical path is the candidate minimizing R (least laxity first).

mod adapt;
mod norm;
mod pure;
mod thres;

use std::fmt;

use serde::{Deserialize, Serialize};
use taskgraph::Time;

pub use adapt::Adapt;
pub use norm::Norm;
pub use pure::Pure;
pub use thres::Thres;

use crate::MetricContext;

/// How path slack is divided over the subtasks of a critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShareRule {
    /// Slack proportional to virtual execution time (the NORM metric).
    Proportional,
    /// Equal slack per path node (PURE, THRES and ADAPT metrics).
    EqualShare,
}

impl ShareRule {
    /// The laxity ratio R for a path with window `window`, total virtual
    /// execution time `total_weight` and `len` nodes.
    ///
    /// Lower is more critical; the slicing algorithm minimizes this value.
    pub fn score(self, window: Time, total_weight: f64, len: usize) -> f64 {
        debug_assert!(len > 0, "paths are non-empty");
        let slack = window.as_f64() - total_weight;
        match self {
            ShareRule::Proportional => {
                debug_assert!(total_weight > 0.0, "virtual execution times are positive");
                slack / total_weight
            }
            ShareRule::EqualShare => slack / len as f64,
        }
    }

    /// The relative deadline assigned to a node of virtual execution time
    /// `weight` on a path with laxity ratio `score`.
    pub fn relative_deadline(self, weight: f64, score: f64) -> f64 {
        match self {
            ShareRule::Proportional => weight * (1.0 + score),
            ShareRule::EqualShare => weight + score,
        }
    }
}

/// A deadline-distribution metric (see the module docs).
///
/// The four metrics of the paper are provided as [`Norm`], [`Pure`],
/// [`Thres`] and [`Adapt`]; [`MetricKind`] is a serializable enum over them.
/// Implement this trait to experiment with custom metrics — the trait is
/// object safe and the slicing algorithm takes `&dyn SliceMetric`.
pub trait SliceMetric: fmt::Debug {
    /// A short display name used in reports (e.g. `"PURE"`).
    fn name(&self) -> &str;

    /// The virtual execution time of a node whose real execution (or
    /// estimated communication) time is `real`.
    fn virtual_time(&self, real: Time, ctx: &MetricContext) -> f64;

    /// How path slack is shared among path nodes.
    fn share_rule(&self) -> ShareRule;
}

/// Specification of the execution-time threshold c_thres used by the
/// threshold-based metrics.
///
/// The paper recommends keeping the threshold close to the mean execution
/// time; the headline experiments use 25 % above the MET.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ThresholdSpec {
    /// A multiple of the workload's mean execution time: `factor × MET`.
    MetFactor(f64),
    /// An absolute threshold in time units.
    Absolute(Time),
}

impl ThresholdSpec {
    /// The paper's default: 25 % above the mean execution time.
    pub const PAPER: ThresholdSpec = ThresholdSpec::MetFactor(1.25);

    /// Resolves the threshold against a workload context.
    pub fn resolve(self, ctx: &MetricContext) -> f64 {
        match self {
            ThresholdSpec::MetFactor(f) => f * ctx.mean_exec_time,
            ThresholdSpec::Absolute(t) => t.as_f64(),
        }
    }
}

/// A serializable choice among the paper's four metrics.
///
/// # Examples
///
/// ```
/// use slicing::{MetricKind, SliceMetric};
///
/// let metric = MetricKind::pure();
/// assert_eq!(metric.name(), "PURE");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MetricKind {
    /// The normalized laxity ratio (BST).
    Norm,
    /// The pure laxity ratio (BST).
    Pure,
    /// The threshold laxity ratio (AST) with a fixed surplus factor Δ.
    Thres {
        /// Surplus factor Δ.
        surplus: f64,
        /// Execution-time threshold.
        threshold: ThresholdSpec,
    },
    /// The adaptive laxity ratio (AST) with surplus ξ/N_proc.
    Adapt {
        /// Execution-time threshold.
        threshold: ThresholdSpec,
    },
}

impl MetricKind {
    /// The NORM metric.
    pub fn norm() -> Self {
        MetricKind::Norm
    }

    /// The PURE metric.
    pub fn pure() -> Self {
        MetricKind::Pure
    }

    /// The THRES metric with the paper's threshold (1.25 × MET).
    pub fn thres(surplus: f64) -> Self {
        MetricKind::Thres {
            surplus,
            threshold: ThresholdSpec::PAPER,
        }
    }

    /// The ADAPT metric with the paper's threshold (1.25 × MET).
    pub fn adapt() -> Self {
        MetricKind::Adapt {
            threshold: ThresholdSpec::PAPER,
        }
    }

    /// A stable label for reports, including parameters.
    pub fn label(&self) -> String {
        match self {
            MetricKind::Norm => "NORM".to_owned(),
            MetricKind::Pure => "PURE".to_owned(),
            MetricKind::Thres { surplus, .. } => format!("THRES(\u{394}={surplus})"),
            MetricKind::Adapt { .. } => "ADAPT".to_owned(),
        }
    }
}

impl SliceMetric for MetricKind {
    fn name(&self) -> &str {
        match self {
            MetricKind::Norm => "NORM",
            MetricKind::Pure => "PURE",
            MetricKind::Thres { .. } => "THRES",
            MetricKind::Adapt { .. } => "ADAPT",
        }
    }

    fn virtual_time(&self, real: Time, ctx: &MetricContext) -> f64 {
        match self {
            MetricKind::Norm => Norm.virtual_time(real, ctx),
            MetricKind::Pure => Pure.virtual_time(real, ctx),
            MetricKind::Thres { surplus, threshold } => {
                Thres::new(*surplus, *threshold).virtual_time(real, ctx)
            }
            MetricKind::Adapt { threshold } => Adapt::new(*threshold).virtual_time(real, ctx),
        }
    }

    fn share_rule(&self) -> ShareRule {
        match self {
            MetricKind::Norm => ShareRule::Proportional,
            _ => ShareRule::EqualShare,
        }
    }
}

#[cfg(test)]
pub(crate) fn test_ctx() -> MetricContext {
    MetricContext {
        mean_exec_time: 20.0,
        avg_parallelism: 4.0,
        processors: 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportional_score_and_deadline() {
        let rule = ShareRule::Proportional;
        // D = 150, total weight 100 => R = 0.5; d_i = w_i * 1.5
        let r = rule.score(Time::new(150), 100.0, 4);
        assert!((r - 0.5).abs() < 1e-12);
        assert!((rule.relative_deadline(40.0, r) - 60.0).abs() < 1e-12);
    }

    #[test]
    fn equal_share_score_and_deadline() {
        let rule = ShareRule::EqualShare;
        // D = 150, total 100, n = 5 => R = 10; d_i = w_i + 10
        let r = rule.score(Time::new(150), 100.0, 5);
        assert!((r - 10.0).abs() < 1e-12);
        assert!((rule.relative_deadline(20.0, r) - 30.0).abs() < 1e-12);
    }

    #[test]
    fn negative_slack_scores_negative() {
        assert!(ShareRule::EqualShare.score(Time::new(50), 100.0, 5) < 0.0);
        assert!(ShareRule::Proportional.score(Time::new(50), 100.0, 5) < 0.0);
    }

    #[test]
    fn threshold_resolution() {
        let ctx = test_ctx();
        assert!((ThresholdSpec::PAPER.resolve(&ctx) - 25.0).abs() < 1e-12);
        assert!((ThresholdSpec::MetFactor(0.75).resolve(&ctx) - 15.0).abs() < 1e-12);
        assert_eq!(ThresholdSpec::Absolute(Time::new(30)).resolve(&ctx), 30.0);
    }

    #[test]
    fn kind_labels_and_names() {
        assert_eq!(MetricKind::norm().label(), "NORM");
        assert_eq!(MetricKind::pure().name(), "PURE");
        assert!(MetricKind::thres(2.0).label().contains("2"));
        assert_eq!(MetricKind::adapt().name(), "ADAPT");
        assert_eq!(MetricKind::norm().share_rule(), ShareRule::Proportional);
        assert_eq!(MetricKind::adapt().share_rule(), ShareRule::EqualShare);
    }

    #[test]
    fn kind_delegates_virtual_time() {
        let ctx = test_ctx();
        // Below threshold (25): all metrics leave the time unchanged.
        for kind in [
            MetricKind::norm(),
            MetricKind::pure(),
            MetricKind::thres(1.0),
            MetricKind::adapt(),
        ] {
            assert_eq!(
                kind.virtual_time(Time::new(10), &ctx),
                10.0,
                "{}",
                kind.label()
            );
        }
        // Above threshold: THRES inflates by (1+Δ), ADAPT by (1+ξ/N).
        assert_eq!(
            MetricKind::thres(1.0).virtual_time(Time::new(30), &ctx),
            60.0
        );
        assert_eq!(MetricKind::adapt().virtual_time(Time::new(30), &ctx), 90.0);
        assert_eq!(MetricKind::pure().virtual_time(Time::new(30), &ctx), 30.0);
        assert_eq!(MetricKind::norm().virtual_time(Time::new(30), &ctx), 30.0);
    }
}
