//! The normalized laxity ratio (NORM) metric of BST.

use taskgraph::Time;

use crate::{MetricContext, ShareRule, SliceMetric};

/// The *normalized laxity ratio* metric: path slack is assigned in
/// proportion to subtask execution time.
///
/// `R_NORM = (D_Φ − Σc) / Σc` and `d_i = c_i (1 + R_NORM)`.
///
/// §6 of the paper shows this metric degrades as execution-time variation
/// grows: short subtasks receive proportionally little slack, so the maximum
/// lateness is governed by the shortest subtask on a contended processor.
///
/// # Examples
///
/// ```
/// use slicing::{metrics::Norm, MetricContext, ShareRule, SliceMetric};
/// use taskgraph::Time;
///
/// let ctx = MetricContext { mean_exec_time: 20.0, avg_parallelism: 2.0, processors: 4 };
/// assert_eq!(Norm.virtual_time(Time::new(35), &ctx), 35.0);
/// assert_eq!(Norm.share_rule(), ShareRule::Proportional);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Norm;

impl SliceMetric for Norm {
    fn name(&self) -> &str {
        "NORM"
    }

    fn virtual_time(&self, real: Time, _ctx: &MetricContext) -> f64 {
        real.as_f64()
    }

    fn share_rule(&self) -> ShareRule {
        ShareRule::Proportional
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::test_ctx;

    #[test]
    fn identity_virtual_time() {
        let ctx = test_ctx();
        assert_eq!(Norm.virtual_time(Time::new(1), &ctx), 1.0);
        assert_eq!(Norm.virtual_time(Time::new(100), &ctx), 100.0);
        assert_eq!(Norm.name(), "NORM");
    }

    #[test]
    fn assigns_slack_proportionally() {
        // Path of 10 + 30 with window 80: R = (80-40)/40 = 1.0.
        let r = Norm.share_rule().score(Time::new(80), 40.0, 2);
        assert!((r - 1.0).abs() < 1e-12);
        let d_short = Norm.share_rule().relative_deadline(10.0, r);
        let d_long = Norm.share_rule().relative_deadline(30.0, r);
        assert!((d_short - 20.0).abs() < 1e-12);
        assert!((d_long - 60.0).abs() < 1e-12);
        // The short subtask gets only 10 units of slack versus 30.
        assert!(d_short - 10.0 < d_long - 30.0);
    }
}
