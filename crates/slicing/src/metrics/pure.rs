//! The pure laxity ratio (PURE) metric of BST.

use taskgraph::Time;

use crate::{MetricContext, ShareRule, SliceMetric};

/// The *pure laxity ratio* metric: every path node receives an equal share
/// of the path slack.
///
/// `R_PURE = (D_Φ − Σc) / n_Φ` and `d_i = c_i + R_PURE`.
///
/// §6 of the paper finds PURE the best BST metric — it is insensitive to
/// execution-time variation — but it underperforms when task-graph
/// parallelism cannot be fully exploited, because long subtasks are the most
/// vulnerable to processor contention yet receive no extra slack.
///
/// # Examples
///
/// ```
/// use slicing::{metrics::Pure, MetricContext, ShareRule, SliceMetric};
/// use taskgraph::Time;
///
/// let ctx = MetricContext { mean_exec_time: 20.0, avg_parallelism: 2.0, processors: 4 };
/// assert_eq!(Pure.virtual_time(Time::new(35), &ctx), 35.0);
/// assert_eq!(Pure.share_rule(), ShareRule::EqualShare);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Pure;

impl SliceMetric for Pure {
    fn name(&self) -> &str {
        "PURE"
    }

    fn virtual_time(&self, real: Time, _ctx: &MetricContext) -> f64 {
        real.as_f64()
    }

    fn share_rule(&self) -> ShareRule {
        ShareRule::EqualShare
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::test_ctx;

    #[test]
    fn identity_virtual_time() {
        let ctx = test_ctx();
        assert_eq!(Pure.virtual_time(Time::new(7), &ctx), 7.0);
        assert_eq!(Pure.name(), "PURE");
    }

    #[test]
    fn assigns_equal_slack() {
        // Path of 10 + 30 with window 80: R = (80-40)/2 = 20.
        let r = Pure.share_rule().score(Time::new(80), 40.0, 2);
        assert!((r - 20.0).abs() < 1e-12);
        let d_short = Pure.share_rule().relative_deadline(10.0, r);
        let d_long = Pure.share_rule().relative_deadline(30.0, r);
        // Both subtasks get exactly 20 units of slack.
        assert!((d_short - 30.0).abs() < 1e-12);
        assert!((d_long - 50.0).abs() < 1e-12);
    }
}
