//! The product of deadline distribution: per-subtask execution windows.

use std::fmt;

use serde::{Deserialize, Serialize};
use taskgraph::{EdgeId, SubtaskId, TaskGraph, Time};

/// A static execution window (*slice*): an absolute release time and an
/// absolute deadline.
///
/// The relative deadline d_i of the paper is
/// [`relative_deadline`](Window::relative_deadline) and the absolute
/// deadline D_i is [`deadline`](Window::deadline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Window {
    release: Time,
    deadline: Time,
}

impl Window {
    /// Creates a window from absolute release and deadline.
    ///
    /// # Panics
    ///
    /// Panics if `deadline < release` — the slicing algorithm clamps
    /// degenerate windows before constructing them.
    pub fn new(release: Time, deadline: Time) -> Self {
        assert!(
            deadline >= release,
            "window deadline {deadline} precedes release {release}"
        );
        Window { release, deadline }
    }

    /// The absolute release time rᵢ.
    #[inline]
    pub fn release(self) -> Time {
        self.release
    }

    /// The absolute deadline Dᵢ.
    #[inline]
    pub fn deadline(self) -> Time {
        self.deadline
    }

    /// The relative deadline dᵢ = Dᵢ − rᵢ.
    #[inline]
    pub fn relative_deadline(self) -> Time {
        self.deadline - self.release
    }

    /// The same window translated `offset` time units into the future.
    ///
    /// Deadline distribution works in graph-local time (inputs released at
    /// their given releases, typically 0); an admission service re-anchors
    /// the result at the arrival instant by shifting every window.
    #[inline]
    #[must_use]
    pub fn shifted(self, offset: Time) -> Self {
        Window {
            release: self.release + offset,
            deadline: self.deadline + offset,
        }
    }
}

impl fmt::Display for Window {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.release, self.deadline)
    }
}

/// A complete deadline distribution over a task graph.
///
/// Produced by [`Slicer::distribute`]; consumed by the scheduler (windows
/// drive EDF priorities and, under the time-driven model, earliest start
/// times) and by analyses (laxity, lateness).
///
/// [`Slicer::distribute`]: crate::Slicer::distribute
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeadlineAssignment {
    task_windows: Vec<Window>,
    comm_windows: Vec<Option<Window>>,
    inverted_paths: usize,
    metric: String,
    estimate: String,
}

impl DeadlineAssignment {
    pub(crate) fn new(
        task_windows: Vec<Window>,
        comm_windows: Vec<Option<Window>>,
        inverted_paths: usize,
        metric: String,
        estimate: String,
    ) -> Self {
        DeadlineAssignment {
            task_windows,
            comm_windows,
            inverted_paths,
            metric,
            estimate,
        }
    }

    /// The execution window of a subtask.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to the distributed graph.
    #[inline]
    pub fn window(&self, id: SubtaskId) -> Window {
        self.task_windows[id.index()]
    }

    /// The execution window of a communication subtask, or `None` if the
    /// message's estimated cost was negligible (§4.2).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to the distributed graph.
    #[inline]
    pub fn comm_window(&self, id: EdgeId) -> Option<Window> {
        self.comm_windows[id.index()]
    }

    /// The assigned release time of a subtask.
    pub fn release(&self, id: SubtaskId) -> Time {
        self.window(id).release()
    }

    /// The assigned absolute deadline of a subtask.
    pub fn absolute_deadline(&self, id: SubtaskId) -> Time {
        self.window(id).deadline()
    }

    /// The laxity of a subtask: how long its start may be delayed without
    /// missing its absolute deadline (window length minus execution time).
    pub fn laxity(&self, graph: &TaskGraph, id: SubtaskId) -> Time {
        self.window(id).relative_deadline() - graph.subtask(id).wcet()
    }

    /// The minimum laxity over all subtasks — the quantity BST maximizes
    /// under strict locality constraints.
    pub fn min_laxity(&self, graph: &TaskGraph) -> Time {
        graph
            .subtask_ids()
            .map(|id| self.laxity(graph, id))
            .min()
            .expect("validated graphs are non-empty")
    }

    /// Number of critical paths whose window was inverted (deadline anchor
    /// before release anchor) and had to be clamped. Non-zero values
    /// indicate an overconstrained instance.
    pub fn inverted_paths(&self) -> usize {
        self.inverted_paths
    }

    /// Name of the metric that produced this assignment.
    pub fn metric_name(&self) -> &str {
        &self.metric
    }

    /// Label of the communication-cost estimation strategy used.
    pub fn estimate_name(&self) -> &str {
        &self.estimate
    }

    /// Number of subtasks covered by this assignment.
    pub fn subtask_count(&self) -> usize {
        self.task_windows.len()
    }

    /// The same assignment translated `offset` time units into the future:
    /// every task and communication window is [`Window::shifted`] uniformly,
    /// preserving all relative deadlines, laxities, and edge orderings.
    ///
    /// This is how an admission service re-anchors a graph-local
    /// distribution at its arrival instant before trial-scheduling it
    /// against the platform's committed load. Validate **before** shifting:
    /// [`validate`](DeadlineAssignment::validate) compares assigned output
    /// deadlines against the graph's *given* (graph-local) deadlines, which
    /// a shifted assignment legitimately exceeds.
    #[must_use]
    pub fn shifted(&self, offset: Time) -> Self {
        DeadlineAssignment {
            task_windows: self
                .task_windows
                .iter()
                .map(|w| w.shifted(offset))
                .collect(),
            comm_windows: self
                .comm_windows
                .iter()
                .map(|w| w.map(|w| w.shifted(offset)))
                .collect(),
            inverted_paths: self.inverted_paths,
            metric: self.metric.clone(),
            estimate: self.estimate.clone(),
        }
    }

    /// Checks the structural soundness of the assignment against its graph:
    /// window ordering along every precedence edge, input releases and
    /// output deadlines.
    pub fn validate(&self, graph: &TaskGraph) -> ValidationReport {
        let mut violations = Vec::new();

        for eid in graph.edge_ids() {
            let edge = graph.edge(eid);
            let producer_deadline = self.absolute_deadline(edge.src());
            let consumer_release = self.release(edge.dst());
            let ordered = match self.comm_window(eid) {
                Some(chi) => {
                    producer_deadline <= chi.release() && chi.deadline() <= consumer_release
                }
                None => producer_deadline <= consumer_release,
            };
            if !ordered {
                violations.push(SliceViolation::EdgeOrdering {
                    edge: eid,
                    producer_deadline,
                    consumer_release,
                });
            }
        }

        for &id in graph.inputs() {
            let given = graph.subtask(id).release().expect("inputs are anchored");
            let assigned = self.release(id);
            if assigned < given {
                violations.push(SliceViolation::InputRelease {
                    subtask: id,
                    assigned,
                    given,
                });
            }
        }
        for &id in graph.outputs() {
            let given = graph.subtask(id).deadline().expect("outputs are anchored");
            let assigned = self.absolute_deadline(id);
            if assigned > given {
                violations.push(SliceViolation::OutputDeadline {
                    subtask: id,
                    assigned,
                    given,
                });
            }
        }

        ValidationReport { violations }
    }
}

/// A structural violation found by [`DeadlineAssignment::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SliceViolation {
    /// A producer's window ends after its consumer's begins.
    EdgeOrdering {
        /// The offending precedence edge.
        edge: EdgeId,
        /// Absolute deadline of the producer.
        producer_deadline: Time,
        /// Assigned release of the consumer.
        consumer_release: Time,
    },
    /// An input subtask was assigned a release before its given release.
    InputRelease {
        /// The input subtask.
        subtask: SubtaskId,
        /// Assigned release.
        assigned: Time,
        /// Given release.
        given: Time,
    },
    /// An output subtask was assigned a deadline after its end-to-end
    /// deadline.
    OutputDeadline {
        /// The output subtask.
        subtask: SubtaskId,
        /// Assigned absolute deadline.
        assigned: Time,
        /// Given end-to-end deadline.
        given: Time,
    },
}

impl fmt::Display for SliceViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SliceViolation::EdgeOrdering {
                edge,
                producer_deadline,
                consumer_release,
            } => write!(
                f,
                "edge {edge}: producer deadline {producer_deadline} exceeds consumer release {consumer_release}"
            ),
            SliceViolation::InputRelease {
                subtask,
                assigned,
                given,
            } => write!(
                f,
                "input {subtask}: assigned release {assigned} precedes given release {given}"
            ),
            SliceViolation::OutputDeadline {
                subtask,
                assigned,
                given,
            } => write!(
                f,
                "output {subtask}: assigned deadline {assigned} exceeds end-to-end deadline {given}"
            ),
        }
    }
}

/// Result of validating a [`DeadlineAssignment`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationReport {
    violations: Vec<SliceViolation>,
}

impl ValidationReport {
    /// Returns `true` if no violations were found.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// The violations, most recently discovered last.
    pub fn violations(&self) -> &[SliceViolation] {
        &self.violations
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_ok() {
            write!(f, "assignment is structurally sound")
        } else {
            writeln!(f, "{} violation(s):", self.violations.len())?;
            for v in &self.violations {
                writeln!(f, "  - {v}")?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_accessors() {
        let w = Window::new(Time::new(10), Time::new(35));
        assert_eq!(w.release(), Time::new(10));
        assert_eq!(w.deadline(), Time::new(35));
        assert_eq!(w.relative_deadline(), Time::new(25));
        assert_eq!(w.to_string(), "[10, 35]");
        let degenerate = Window::new(Time::new(5), Time::new(5));
        assert_eq!(degenerate.relative_deadline(), Time::ZERO);
    }

    #[test]
    #[should_panic(expected = "precedes release")]
    fn window_rejects_inversion() {
        let _ = Window::new(Time::new(10), Time::new(9));
    }

    #[test]
    fn shifted_translates_uniformly() {
        let w = Window::new(Time::new(10), Time::new(35));
        let s = w.shifted(Time::new(100));
        assert_eq!(s.release(), Time::new(110));
        assert_eq!(s.deadline(), Time::new(135));
        assert_eq!(s.relative_deadline(), w.relative_deadline());

        let a = DeadlineAssignment::new(
            vec![w, Window::new(Time::new(35), Time::new(50))],
            vec![None, Some(Window::new(Time::new(35), Time::new(40)))],
            1,
            "norm".into(),
            "ccne".into(),
        );
        let shifted = a.shifted(Time::new(7));
        assert_eq!(shifted.release(SubtaskId::new(0)), Time::new(17));
        assert_eq!(shifted.absolute_deadline(SubtaskId::new(1)), Time::new(57));
        assert_eq!(shifted.comm_window(EdgeId::new(0)), None);
        assert_eq!(
            shifted.comm_window(EdgeId::new(1)),
            Some(Window::new(Time::new(42), Time::new(47)))
        );
        assert_eq!(shifted.inverted_paths(), 1);
        assert_eq!(shifted.metric_name(), "norm");
        assert_eq!(shifted.estimate_name(), "ccne");
        // Zero offset is the identity.
        assert_eq!(a.shifted(Time::ZERO), a);
    }

    #[test]
    fn violation_display() {
        let e = SliceViolation::EdgeOrdering {
            edge: EdgeId::new(0),
            producer_deadline: Time::new(10),
            consumer_release: Time::new(5),
        };
        assert!(e.to_string().contains("m0"));
        let i = SliceViolation::InputRelease {
            subtask: SubtaskId::new(1),
            assigned: Time::ZERO,
            given: Time::new(4),
        };
        assert!(i.to_string().contains("t1"));
        let o = SliceViolation::OutputDeadline {
            subtask: SubtaskId::new(2),
            assigned: Time::new(100),
            given: Time::new(90),
        };
        assert!(o.to_string().contains("end-to-end"));
    }
}
