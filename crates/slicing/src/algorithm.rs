//! The basic deadline-assignment algorithm (Figure 1 of the paper).
//!
//! ```text
//! 1.  initialize set Π with all subtasks in the task graph;
//! 2.  while Π ≠ ∅ loop
//! 3.    find a critical path Φ in Π that minimizes metric R;
//! 4.    distribute the end-to-end deadline of Φ by assigning
//!       release times and deadlines to the subtasks in Φ;
//! 5-12. attach the remaining subtasks: predecessors of spine nodes
//!       inherit deadlines, successors inherit release times;
//! 13.   remove all subtasks in Φ from Π;
//! 14. end loop
//! ```
//!
//! Communication subtasks participate whenever their estimated cost is
//! non-negligible, which is what lets the algorithm run *before* task
//! assignment (relaxed locality constraints).

use std::fmt;

use platform::Platform;
use taskgraph::{TaskGraph, Time};

use crate::expanded::{ExpKind, ExpandedGraph};
use crate::path_search::{CriticalPath, PathSearch};
use crate::{
    CommEstimate, DeadlineAssignment, MetricContext, MetricKind, ShareRule, SliceError,
    SliceMetric, Thres, Window,
};

/// The deadline-distribution engine: a metric plus a communication-cost
/// estimation strategy.
///
/// Use the convenience constructors for the paper's configurations:
///
/// * [`Slicer::bst_norm`] / [`Slicer::bst_pure`] — the Basic Slicing
///   Technique metrics of Di Natale & Stankovic evaluated in §6;
/// * [`Slicer::ast_thres`] / [`Slicer::ast_adapt`] — the Adaptive Slicing
///   Technique of §7 (always CCNE, per the paper's design decision).
///
/// # Examples
///
/// ```
/// use platform::Platform;
/// use rand::SeedableRng;
/// use slicing::Slicer;
/// use taskgraph::gen::{generate, ExecVariation, WorkloadSpec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = WorkloadSpec::paper(ExecVariation::Mdet);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let graph = generate(&spec, &mut rng)?;
/// let platform = Platform::paper(4)?;
///
/// let assignment = Slicer::ast_adapt().distribute(&graph, &platform)?;
/// assert!(assignment.validate(&graph).is_ok());
/// # Ok(())
/// # }
/// ```
pub struct Slicer {
    metric: Box<dyn SliceMetric + Send + Sync>,
    estimate: CommEstimate,
    strict_windows: bool,
}

impl fmt::Debug for Slicer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Slicer")
            .field("metric", &self.metric.name())
            .field("estimate", &self.estimate.label())
            .field("strict_windows", &self.strict_windows)
            .finish()
    }
}

impl Slicer {
    /// Creates a slicer with a custom metric and the CCNE estimation
    /// strategy.
    pub fn new(metric: impl SliceMetric + Send + Sync + 'static) -> Self {
        Slicer {
            metric: Box::new(metric),
            estimate: CommEstimate::Ccne,
            strict_windows: false,
        }
    }

    /// Replaces the communication-cost estimation strategy.
    #[must_use]
    pub fn with_estimate(mut self, estimate: CommEstimate) -> Self {
        self.estimate = estimate;
        self
    }

    /// Enables a final clamp that tightens every deadline to its successors'
    /// assigned releases, in one reverse-topological pass.
    ///
    /// The paper's algorithm slices each critical path against the path's
    /// *endpoint* anchors only; release/deadline anchors inherited by
    /// *interior* nodes from previously sliced spines are used for path
    /// selection but not re-checked during slicing, so skewed weightings
    /// (NORM/THRES/ADAPT) can leave a producer's deadline marginally past a
    /// consumer's release (an `EdgeOrdering` violation that
    /// [`DeadlineAssignment::validate`] reports). The clamp repairs every
    /// such edge; deadlines only shrink, so feasible schedules stay
    /// feasible, but windows (and therefore measured lateness) change for
    /// the affected cells — which is why it is off by default and the
    /// published figures are reproduced without it.
    ///
    /// On an *inverted* (overconstrained) instance the clamp can shrink a
    /// window to zero width and, for anchored inputs, below the given
    /// release; the residual violation is then reported by `validate` as
    /// usual.
    #[must_use]
    pub fn with_strict_windows(mut self, strict: bool) -> Self {
        self.strict_windows = strict;
        self
    }

    /// BST with the NORM metric (§6).
    pub fn bst_norm() -> Self {
        Slicer::new(MetricKind::Norm)
    }

    /// BST with the PURE metric (§6).
    pub fn bst_pure() -> Self {
        Slicer::new(MetricKind::Pure)
    }

    /// AST with the THRES metric (§7): surplus factor Δ, threshold 1.25 ×
    /// MET, CCNE estimation.
    pub fn ast_thres(surplus: f64) -> Self {
        Slicer::new(MetricKind::Thres {
            surplus,
            threshold: crate::ThresholdSpec::PAPER,
        })
    }

    /// AST with the THRES metric and an explicit threshold.
    pub fn ast_thres_with(thres: Thres) -> Self {
        Slicer::new(thres)
    }

    /// AST with the ADAPT metric (§7): surplus ξ/N_proc, threshold 1.25 ×
    /// MET, CCNE estimation.
    pub fn ast_adapt() -> Self {
        Slicer::new(MetricKind::adapt())
    }

    /// The metric's display name.
    pub fn metric_name(&self) -> &str {
        self.metric.name()
    }

    /// The estimation strategy's label.
    pub fn estimate_label(&self) -> &'static str {
        self.estimate.label()
    }

    /// The metric, for the incremental replay path.
    pub(crate) fn metric(&self) -> &(dyn SliceMetric + Send + Sync) {
        self.metric.as_ref()
    }

    /// The estimation strategy, for the incremental replay path.
    pub(crate) fn estimate(&self) -> &CommEstimate {
        &self.estimate
    }

    /// Whether the strict-window clamp is enabled.
    pub(crate) fn strict(&self) -> bool {
        self.strict_windows
    }

    /// Distributes end-to-end deadlines over all subtasks of `graph`,
    /// producing a window for every subtask and every non-negligible
    /// communication subtask.
    ///
    /// # Errors
    ///
    /// Returns [`SliceError::NoAnchoredPath`] if the internal invariant that
    /// an anchored path always exists is violated (this would indicate a
    /// bug, not a property of the input).
    pub fn distribute(
        &self,
        graph: &TaskGraph,
        platform: &Platform,
    ) -> Result<DeadlineAssignment, SliceError> {
        let _span = tracing::debug_span!(
            "distribute",
            metric = self.metric.name(),
            estimate = self.estimate.label(),
            subtasks = graph.subtask_count()
        )
        .entered();

        let ctx = MetricContext::for_workload(graph, platform);
        let exp = ExpandedGraph::build(graph, &self.estimate, platform);
        let rule = self.metric.share_rule();

        let n = exp.len();
        let vweights: Vec<f64> = (0..n)
            .map(|v| self.metric.virtual_time(exp.weight(v), &ctx))
            .collect();

        let mut state = SliceState::init(graph, &exp);
        let mut search = PathSearch::new(n, exp.max_chain());
        let mut paths = 0usize;
        // Scratch reused across loop iterations: the hot loop runs once per
        // critical path and must not allocate per path.
        let mut path_weights: Vec<f64> = Vec::new();
        let mut slices: Vec<Window> = Vec::new();

        while state.remaining > 0 {
            let cp = search
                .find_critical_path(
                    &exp,
                    &vweights,
                    &state.assigned,
                    &state.rel,
                    &state.dl,
                    rule,
                )
                .ok_or(SliceError::NoAnchoredPath)?;
            paths += 1;
            apply_path(
                &exp,
                &vweights,
                rule,
                &cp,
                &mut state,
                &mut path_weights,
                &mut slices,
                paths,
            );
        }

        tracing::debug!(
            paths = paths,
            inverted = state.inverted,
            expanded_nodes = n,
            "deadline distribution complete"
        );

        finalize(self, graph, &exp, state)
    }
}

/// Mutable per-run slicing state: which expanded nodes are sliced, the
/// accumulated release/deadline anchors, and the windows produced so far.
///
/// Factored out of [`Slicer::distribute`] so the incremental replay in
/// [`crate::SliceMemo`]-driven redistribution advances the *same* state with
/// the *same* transition function — bit-identity between the two is then a
/// matter of feeding identical critical paths in, which the per-start
/// dependency sets guarantee.
#[derive(Debug, Clone)]
pub(crate) struct SliceState {
    pub(crate) assigned: Vec<bool>,
    pub(crate) rel: Vec<Option<Time>>,
    pub(crate) dl: Vec<Option<Time>>,
    pub(crate) windows: Vec<Option<Window>>,
    pub(crate) remaining: usize,
    pub(crate) inverted: usize,
}

impl SliceState {
    /// Fresh state for one run: anchors seeded from the graph's own
    /// release/deadline attributes, nothing sliced yet.
    pub(crate) fn init(graph: &TaskGraph, exp: &ExpandedGraph) -> SliceState {
        let n = exp.len();
        let mut rel: Vec<Option<Time>> = vec![None; n];
        let mut dl: Vec<Option<Time>> = vec![None; n];
        for id in graph.subtask_ids() {
            let v = exp.task_node(id);
            rel[v] = graph.subtask(id).release();
            dl[v] = graph.subtask(id).deadline();
        }
        SliceState {
            assigned: vec![false; n],
            rel,
            dl,
            windows: vec![None; n],
            remaining: n,
            inverted: 0,
        }
    }
}

/// Applies one chosen critical path to the slicing state: slices its window,
/// marks the spine assigned, and runs the attach step (spine predecessors
/// inherit deadlines, spine successors inherit release times; anchors
/// accumulate across iterations — max for releases, min for deadlines).
///
/// `path_weights` and `slices` are reusable scratch buffers.
#[allow(clippy::too_many_arguments)]
pub(crate) fn apply_path(
    exp: &ExpandedGraph,
    vweights: &[f64],
    rule: ShareRule,
    cp: &CriticalPath,
    state: &mut SliceState,
    path_weights: &mut Vec<f64>,
    slices: &mut Vec<Window>,
    path_no: usize,
) {
    path_weights.clear();
    path_weights.extend(cp.nodes.iter().map(|&v| vweights[v]));
    let was_inverted = slice_window(cp, path_weights, rule, slices);
    if was_inverted {
        state.inverted += 1;
    }
    tracing::trace!(
        path = path_no,
        len = cp.nodes.len(),
        window_start = %cp.window_start,
        window_end = %cp.window_end,
        slack = (cp.window_end.max(cp.window_start) - cp.window_start).as_f64()
            - path_weights.iter().sum::<f64>(),
        inverted = was_inverted,
        "sliced critical path"
    );

    for (&v, &win) in cp.nodes.iter().zip(slices.iter()) {
        debug_assert!(state.windows[v].is_none(), "node sliced twice");
        state.windows[v] = Some(win);
        state.assigned[v] = true;
        state.remaining -= 1;
    }

    for &v in &cp.nodes {
        let win = state.windows[v].expect("just assigned");
        for &p in exp.pred(v) {
            let p = p as usize;
            if !state.assigned[p] {
                let bound = win.release();
                state.dl[p] = Some(state.dl[p].map_or(bound, |d| d.min(bound)));
            }
        }
        for &s in exp.succ(v) {
            let s = s as usize;
            if !state.assigned[s] {
                let bound = win.deadline();
                state.rel[s] = Some(state.rel[s].map_or(bound, |r| r.max(bound)));
            }
        }
    }
}

/// Turns a fully-sliced state into a [`DeadlineAssignment`]: optional
/// strict-window clamp, then window collection in subtask/edge order.
pub(crate) fn finalize(
    slicer: &Slicer,
    graph: &TaskGraph,
    exp: &ExpandedGraph,
    mut state: SliceState,
) -> Result<DeadlineAssignment, SliceError> {
    let windows = &mut state.windows;
    if slicer.strict() {
        // Reverse-topological clamp: successors are finalized before any
        // of their predecessors, so one pass suffices even when a clamp
        // cascades through a chain of zero-slack windows.
        let mut clamped = 0usize;
        for &v in exp.topo().iter().rev() {
            let v = v as usize;
            let win = windows[v].expect("all expanded nodes are sliced");
            let mut bound = win.deadline();
            for &s in exp.succ(v) {
                let succ_release = windows[s as usize]
                    .expect("all expanded nodes are sliced")
                    .release();
                bound = bound.min(succ_release);
            }
            if bound < win.deadline() {
                clamped += 1;
                windows[v] = Some(Window::new(win.release().min(bound), bound));
            }
        }
        if clamped > 0 {
            tracing::debug!(clamped = clamped, "strict window clamp tightened deadlines");
        }
    }

    let mut task_windows = Vec::with_capacity(graph.subtask_count());
    for id in graph.subtask_ids() {
        task_windows.push(windows[exp.task_node(id)].ok_or(SliceError::NoAnchoredPath)?);
    }
    let mut comm_windows = Vec::with_capacity(graph.edge_count());
    for eid in graph.edge_ids() {
        comm_windows.push(match exp.comm_node(eid) {
            Some(v) => {
                debug_assert!(matches!(exp.kind(v), ExpKind::Comm(e) if e == eid));
                windows[v]
            }
            None => None,
        });
    }

    Ok(DeadlineAssignment::new(
        task_windows,
        comm_windows,
        state.inverted,
        slicer.metric_name().to_owned(),
        slicer.estimate_label().to_owned(),
    ))
}

/// Partitions the critical path's window into consecutive slices according
/// to the share rule, rounding to integer boundaries while preserving the
/// exact window and monotonicity. Fills `slices` (a reusable scratch
/// buffer, cleared first) and returns whether the window was inverted
/// (deadline anchor before release anchor) and clamped.
fn slice_window(
    cp: &CriticalPath,
    weights: &[f64],
    rule: ShareRule,
    slices: &mut Vec<Window>,
) -> bool {
    let w0 = cp.window_start;
    let inverted = cp.window_end < w0;
    let w1 = cp.window_end.max(w0);
    let window = w1 - w0;
    let total: f64 = weights.iter().sum();
    let score = rule.score(window, total, weights.len());

    slices.clear();
    slices.reserve(weights.len());
    let mut prev = w0;
    let mut acc = w0.as_f64();
    for (i, &w) in weights.iter().enumerate() {
        acc += rule.relative_deadline(w, score);
        let bound = if i + 1 == weights.len() {
            w1
        } else {
            Time::from_f64_rounded(acc).max(prev).min(w1)
        };
        slices.push(Window::new(prev, bound));
        prev = bound;
    }
    inverted
}

#[cfg(test)]
mod tests {
    use platform::Platform;
    use taskgraph::{Subtask, SubtaskId, TaskGraph};

    use super::*;

    fn chain(wcets: &[i64], deadline: i64) -> TaskGraph {
        let mut b = TaskGraph::builder();
        let mut prev = None;
        for (i, &c) in wcets.iter().enumerate() {
            let mut s = Subtask::new(Time::new(c));
            if i == 0 {
                s = s.released_at(Time::ZERO);
            }
            if i + 1 == wcets.len() {
                s = s.due_at(Time::new(deadline));
            }
            let id = b.add_subtask(s);
            if let Some(p) = prev {
                b.add_edge(p, id, 10).unwrap();
            }
            prev = Some(id);
        }
        b.build().unwrap()
    }

    #[test]
    fn pure_assigns_equal_slack_on_a_chain() {
        let g = chain(&[10, 30, 20], 120);
        let p = Platform::paper(2).unwrap();
        let a = Slicer::bst_pure().distribute(&g, &p).unwrap();
        // Slack = 120 - 60 = 60, three nodes => 20 each.
        for (i, expected) in [(0, 30), (1, 50), (2, 40)] {
            assert_eq!(
                a.window(SubtaskId::new(i)).relative_deadline(),
                Time::new(expected)
            );
        }
        // Windows tile the end-to-end window exactly.
        assert_eq!(a.window(SubtaskId::new(0)).release(), Time::ZERO);
        assert_eq!(a.window(SubtaskId::new(2)).deadline(), Time::new(120));
        assert_eq!(
            a.window(SubtaskId::new(0)).deadline(),
            a.window(SubtaskId::new(1)).release()
        );
        assert!(a.validate(&g).is_ok());
        assert_eq!(a.metric_name(), "PURE");
        assert_eq!(a.estimate_name(), "CCNE");
        assert_eq!(a.inverted_paths(), 0);
        assert_eq!(a.min_laxity(&g), Time::new(20));
    }

    #[test]
    fn norm_assigns_proportional_slack_on_a_chain() {
        let g = chain(&[10, 30, 20], 120);
        let p = Platform::paper(2).unwrap();
        let a = Slicer::bst_norm().distribute(&g, &p).unwrap();
        // R = (120-60)/60 = 1 => d_i = 2 c_i.
        for (i, expected) in [(0, 20), (1, 60), (2, 40)] {
            assert_eq!(
                a.window(SubtaskId::new(i)).relative_deadline(),
                Time::new(expected)
            );
        }
        assert!(a.validate(&g).is_ok());
    }

    #[test]
    fn ccaa_gives_windows_to_messages() {
        let g = chain(&[10, 30], 200);
        let p = Platform::paper(2).unwrap();
        let a = Slicer::bst_pure()
            .with_estimate(CommEstimate::Ccaa)
            .distribute(&g, &p)
            .unwrap();
        let eid = g.edge_ids().next().unwrap();
        let chi = a.comm_window(eid).expect("CCAA materializes messages");
        // Slack = 200 - (10 + 10 + 30) = 150 over 3 nodes => 50 each.
        assert_eq!(chi.relative_deadline(), Time::new(60));
        assert_eq!(a.window(SubtaskId::new(0)).deadline(), chi.release());
        assert_eq!(chi.deadline(), a.window(SubtaskId::new(1)).release());
        assert!(a.validate(&g).is_ok());
    }

    #[test]
    fn ccne_messages_are_transparent() {
        let g = chain(&[10, 30], 200);
        let p = Platform::paper(2).unwrap();
        let a = Slicer::bst_pure().distribute(&g, &p).unwrap();
        assert!(a.comm_window(g.edge_ids().next().unwrap()).is_none());
    }

    #[test]
    fn diamond_distribution_is_structurally_sound() {
        // a -> {b(60), c(20)} -> d; heavy branch sliced first, light branch
        // attaches to the spine windows.
        let mut b = TaskGraph::builder();
        let a = b.add_subtask(Subtask::new(Time::new(10)).released_at(Time::ZERO));
        let x = b.add_subtask(Subtask::new(Time::new(60)));
        let y = b.add_subtask(Subtask::new(Time::new(20)));
        let d = b.add_subtask(Subtask::new(Time::new(10)).due_at(Time::new(200)));
        b.add_edge(a, x, 1).unwrap();
        b.add_edge(a, y, 1).unwrap();
        b.add_edge(x, d, 1).unwrap();
        b.add_edge(y, d, 1).unwrap();
        let g = b.build().unwrap();
        let p = Platform::paper(2).unwrap();
        let asg = Slicer::bst_pure().distribute(&g, &p).unwrap();
        let report = asg.validate(&g);
        assert!(report.is_ok(), "{report}");
        // The light branch lives inside the window left by the spine.
        let yw = asg.window(y);
        assert!(yw.release() >= asg.window(a).deadline());
        assert!(yw.deadline() <= asg.window(d).release());
    }

    #[test]
    fn adapt_gives_long_tasks_more_slack_on_small_systems() {
        let g = chain(&[10, 40, 10], 240); // MET = 20, threshold 25
        let small = Platform::paper(1).unwrap();
        let a = Slicer::ast_adapt().distribute(&g, &small).unwrap();
        let slack_long = a.laxity(&g, SubtaskId::new(1));
        let slack_short = a.laxity(&g, SubtaskId::new(0));
        assert!(
            slack_long > slack_short,
            "long {slack_long} vs short {slack_short}"
        );
        assert!(a.validate(&g).is_ok());
    }

    #[test]
    fn thres_matches_hand_computation() {
        // weights: 10, 40(1+1)=80, 10 => total 100; window 240 => R = 140/3.
        let g = chain(&[10, 40, 10], 240);
        let p = Platform::paper(4).unwrap();
        let a = Slicer::ast_thres(1.0).distribute(&g, &p).unwrap();
        let d0 = a.window(SubtaskId::new(0)).relative_deadline().as_i64();
        let d1 = a.window(SubtaskId::new(1)).relative_deadline().as_i64();
        let d2 = a.window(SubtaskId::new(2)).relative_deadline().as_i64();
        assert_eq!(d0 + d1 + d2, 240);
        // d0 ≈ 10 + 46.67 ≈ 57, d1 ≈ 80 + 46.67 ≈ 127, d2 rest.
        assert!((56..=58).contains(&d0), "d0={d0}");
        assert!((126..=128).contains(&d1), "d1={d1}");
    }

    #[test]
    fn threshold_metrics_degenerate_to_pure_when_threshold_unreachable() {
        // With an absolute threshold above every execution time, THRES and
        // ADAPT inflate nothing and must reproduce PURE exactly.
        let g = chain(&[10, 30, 20], 120);
        let p = Platform::paper(2).unwrap();
        let pure = Slicer::bst_pure().distribute(&g, &p).unwrap();
        for metric in [
            MetricKind::Thres {
                surplus: 3.0,
                threshold: crate::ThresholdSpec::Absolute(Time::new(1_000)),
            },
            MetricKind::Adapt {
                threshold: crate::ThresholdSpec::Absolute(Time::new(1_000)),
            },
        ] {
            let asg = Slicer::new(metric).distribute(&g, &p).unwrap();
            for id in g.subtask_ids() {
                assert_eq!(asg.window(id), pure.window(id), "{}", metric.label());
            }
        }
    }

    #[test]
    fn custom_metric_through_trait_object() {
        // Users can plug their own metric: one that inflates everything 2x
        // behaves like PURE (uniform inflation cancels in the equal share).
        #[derive(Debug)]
        struct Doubler;
        impl crate::SliceMetric for Doubler {
            fn name(&self) -> &str {
                "DOUBLER"
            }
            fn virtual_time(&self, real: Time, _ctx: &MetricContext) -> f64 {
                real.as_f64() * 2.0
            }
            fn share_rule(&self) -> ShareRule {
                ShareRule::Proportional
            }
        }
        let g = chain(&[10, 30, 20], 120);
        let p = Platform::paper(2).unwrap();
        let asg = Slicer::new(Doubler).distribute(&g, &p).unwrap();
        assert_eq!(asg.metric_name(), "DOUBLER");
        // Proportional over doubled weights == proportional over weights.
        let norm = Slicer::bst_norm().distribute(&g, &p).unwrap();
        for id in g.subtask_ids() {
            assert_eq!(asg.window(id), norm.window(id));
        }
    }

    #[test]
    fn slicer_debug_and_labels() {
        let s = Slicer::ast_adapt();
        let dbg = format!("{s:?}");
        assert!(dbg.contains("ADAPT") && dbg.contains("CCNE"));
        assert_eq!(s.metric_name(), "ADAPT");
        assert_eq!(Slicer::bst_norm().metric_name(), "NORM");
        assert_eq!(
            Slicer::bst_pure()
                .with_estimate(CommEstimate::Ccaa)
                .estimate_label(),
            "CCAA"
        );
        assert_eq!(Slicer::ast_thres(2.0).metric_name(), "THRES");
        assert_eq!(
            Slicer::ast_thres_with(Thres::paper()).metric_name(),
            "THRES"
        );
    }

    #[test]
    fn strict_windows_is_a_no_op_on_clean_assignments() {
        let g = chain(&[10, 30, 20], 120);
        let p = Platform::paper(2).unwrap();
        for metric in [MetricKind::Pure, MetricKind::Norm, MetricKind::adapt()] {
            let plain = Slicer::new(metric).distribute(&g, &p).unwrap();
            assert!(plain.validate(&g).is_ok());
            let strict = Slicer::new(metric)
                .with_strict_windows(true)
                .distribute(&g, &p)
                .unwrap();
            for id in g.subtask_ids() {
                assert_eq!(strict.window(id), plain.window(id), "{}", metric.label());
            }
        }
    }

    #[test]
    fn strict_windows_repairs_latent_edge_ordering_violations() {
        use rand::SeedableRng;
        use taskgraph::gen::{generate, ExecVariation, WorkloadSpec};

        // The skewed metrics leave a producer's deadline marginally past a
        // consumer's release on ≈1 % of paper workloads (EXPERIMENTS.md,
        // deviation 5), mostly at 2 processors. Scan enough seeds to hit
        // the latent case, then check the clamp repairs every edge.
        let spec = WorkloadSpec::paper(ExecVariation::Mdet);
        let p = Platform::paper(2).unwrap();
        let mut latent = 0usize;
        for seed in 0..256u64 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let Ok(g) = generate(&spec, &mut rng) else {
                continue;
            };
            for metric in [MetricKind::Norm, MetricKind::adapt()] {
                let plain = Slicer::new(metric).distribute(&g, &p).unwrap();
                latent += plain.validate(&g).violations().len();
                let strict = Slicer::new(metric)
                    .with_strict_windows(true)
                    .distribute(&g, &p)
                    .unwrap();
                let report = strict.validate(&g);
                assert!(report.is_ok(), "seed {seed}, {}: {report}", metric.label());
            }
        }
        assert!(
            latent > 0,
            "expected the unclamped metrics to exhibit the latent ordering \
             violations this clamp exists for"
        );
    }

    #[test]
    fn single_subtask_graph() {
        let mut b = TaskGraph::builder();
        let only = b.add_subtask(
            Subtask::new(Time::new(8))
                .released_at(Time::new(2))
                .due_at(Time::new(40)),
        );
        let g = b.build().unwrap();
        let p = Platform::paper(2).unwrap();
        let a = Slicer::bst_pure().distribute(&g, &p).unwrap();
        assert_eq!(a.window(only), Window::new(Time::new(2), Time::new(40)));
        assert!(a.validate(&g).is_ok());
    }

    #[test]
    fn parallel_independent_chains() {
        // Two disconnected chains must both be sliced.
        let mut b = TaskGraph::builder();
        let a1 = b.add_subtask(Subtask::new(Time::new(10)).released_at(Time::ZERO));
        let a2 = b.add_subtask(Subtask::new(Time::new(10)).due_at(Time::new(100)));
        let b1 = b.add_subtask(Subtask::new(Time::new(20)).released_at(Time::ZERO));
        let b2 = b.add_subtask(Subtask::new(Time::new(20)).due_at(Time::new(80)));
        b.add_edge(a1, a2, 5).unwrap();
        b.add_edge(b1, b2, 5).unwrap();
        let g = b.build().unwrap();
        let p = Platform::paper(2).unwrap();
        let asg = Slicer::bst_pure().distribute(&g, &p).unwrap();
        assert!(asg.validate(&g).is_ok());
        // Chain B is more critical: (80-40)/2 = 20 < (100-20)/2 = 40.
        assert_eq!(asg.window(b1).relative_deadline(), Time::new(40));
        assert_eq!(asg.window(a1).relative_deadline(), Time::new(50));
    }
}
