//! Graph deltas: compact descriptions of workload mutations.
//!
//! An online admission-control service does not regenerate its task graph
//! from scratch when one WCET estimate is revised or one sensor task is
//! re-pinned — it mutates the resident workload. A [`GraphDelta`] captures
//! such a mutation batch as a sequence of [`DeltaOp`]s and
//! [applies](GraphDelta::apply) it to an existing [`TaskGraph`] +
//! [`Pinning`] pair, producing a fresh, fully re-validated pair (the
//! original is untouched; `TaskGraph` is immutable by design).
//!
//! The applied result feeds [`Slicer::redistribute`](crate::Slicer) (and,
//! downstream, schedule repair), which reuses as much of the previous run
//! as the delta's dirty cone allows while staying bit-identical to a
//! from-scratch recompute.

use std::fmt;

use platform::{Pinning, PlatformError, ProcessorId};
use serde::{Deserialize, Serialize};
use taskgraph::{GraphError, Subtask, SubtaskId, TaskGraph, Time};

/// One mutation of a task graph or its locality constraints.
///
/// Subtask ids refer to the numbering *at the time the op is applied*:
/// earlier ops in the same [`GraphDelta`] shift it (a
/// [`RemoveSubtask`](DeltaOp::RemoveSubtask) renumbers every id above the
/// removed one down by one; an [`AddSubtask`](DeltaOp::AddSubtask) appends
/// at the end).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DeltaOp {
    /// Replaces a subtask's worst-case execution time.
    SetWcet {
        /// The subtask to edit.
        subtask: SubtaskId,
        /// The new WCET (must stay positive; validated on rebuild).
        wcet: Time,
    },
    /// Sets or clears a subtask's given release time.
    SetRelease {
        /// The subtask to edit.
        subtask: SubtaskId,
        /// The new release anchor, or `None` to clear it.
        release: Option<Time>,
    },
    /// Sets or clears a subtask's given end-to-end deadline.
    SetDeadline {
        /// The subtask to edit.
        subtask: SubtaskId,
        /// The new deadline anchor, or `None` to clear it.
        deadline: Option<Time>,
    },
    /// Appends a new subtask (its id becomes the current subtask count).
    AddSubtask {
        /// The subtask to insert, with its anchors already set.
        subtask: Subtask,
    },
    /// Removes a subtask along with every incident edge and its pin;
    /// subtasks with higher ids are renumbered down by one.
    RemoveSubtask {
        /// The subtask to remove.
        subtask: SubtaskId,
    },
    /// Adds a precedence edge carrying `items` data items.
    AddEdge {
        /// The producing subtask.
        src: SubtaskId,
        /// The consuming subtask.
        dst: SubtaskId,
        /// Message payload in data items (must be positive).
        items: u64,
    },
    /// Removes the edge `src → dst`.
    RemoveEdge {
        /// The producing subtask.
        src: SubtaskId,
        /// The consuming subtask.
        dst: SubtaskId,
    },
    /// Pins a subtask to a processor (replacing any existing pin, so a pin
    /// *move* is a single op).
    Pin {
        /// The subtask to constrain.
        subtask: SubtaskId,
        /// The processor it must run on.
        processor: ProcessorId,
    },
    /// Removes a subtask's locality constraint (a no-op if unpinned).
    Unpin {
        /// The subtask to relax.
        subtask: SubtaskId,
    },
}

/// An ordered batch of [`DeltaOp`]s applied atomically: either every op
/// applies and the rebuilt graph validates, or nothing is produced.
///
/// # Examples
///
/// ```
/// use platform::Pinning;
/// use slicing::{DeltaOp, GraphDelta};
/// use taskgraph::{Subtask, SubtaskId, TaskGraph, Time};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = TaskGraph::builder();
/// let a = b.add_subtask(Subtask::new(Time::new(10)).released_at(Time::ZERO));
/// let z = b.add_subtask(Subtask::new(Time::new(20)).due_at(Time::new(100)));
/// b.add_edge(a, z, 5)?;
/// let graph = b.build()?;
///
/// let delta = GraphDelta::new().set_wcet(a, Time::new(15));
/// let applied = delta.apply(&graph, &Pinning::new())?;
/// assert_eq!(applied.graph.subtask(a).wcet(), Time::new(15));
/// assert_eq!(applied.graph.subtask(z).wcet(), Time::new(20));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GraphDelta {
    ops: Vec<DeltaOp>,
}

/// The result of applying a [`GraphDelta`]: a rebuilt, validated graph and
/// the updated locality constraints.
#[derive(Debug, Clone, PartialEq)]
pub struct Applied {
    /// The mutated task graph (re-validated by the builder).
    pub graph: TaskGraph,
    /// The mutated pinning, with removed subtasks dropped and surviving
    /// ones renumbered consistently with the graph.
    pub pinning: Pinning,
}

/// Why a [`GraphDelta`] could not be applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// An op referenced a subtask id that does not exist at that point of
    /// the sequence.
    UnknownSubtask(SubtaskId),
    /// [`DeltaOp::RemoveEdge`] referenced an edge that does not exist.
    UnknownEdge(SubtaskId, SubtaskId),
    /// The rebuilt graph failed validation (cycle, non-positive WCET,
    /// missing anchor, duplicate edge, ...).
    Graph(GraphError),
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::UnknownSubtask(id) => write!(f, "delta references unknown subtask {id}"),
            DeltaError::UnknownEdge(src, dst) => {
                write!(f, "delta references unknown edge {src} -> {dst}")
            }
            DeltaError::Graph(e) => write!(f, "delta produced an invalid graph: {e}"),
        }
    }
}

impl std::error::Error for DeltaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DeltaError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for DeltaError {
    fn from(e: GraphError) -> Self {
        DeltaError::Graph(e)
    }
}

impl GraphDelta {
    /// An empty delta (applying it clones the inputs verbatim).
    pub fn new() -> Self {
        GraphDelta::default()
    }

    /// Appends an arbitrary op.
    #[must_use]
    pub fn push(mut self, op: DeltaOp) -> Self {
        self.ops.push(op);
        self
    }

    /// Appends a WCET change.
    #[must_use]
    pub fn set_wcet(self, subtask: SubtaskId, wcet: Time) -> Self {
        self.push(DeltaOp::SetWcet { subtask, wcet })
    }

    /// Appends a release-anchor change.
    #[must_use]
    pub fn set_release(self, subtask: SubtaskId, release: Option<Time>) -> Self {
        self.push(DeltaOp::SetRelease { subtask, release })
    }

    /// Appends a deadline-anchor change.
    #[must_use]
    pub fn set_deadline(self, subtask: SubtaskId, deadline: Option<Time>) -> Self {
        self.push(DeltaOp::SetDeadline { subtask, deadline })
    }

    /// Appends a subtask insertion.
    #[must_use]
    pub fn add_subtask(self, subtask: Subtask) -> Self {
        self.push(DeltaOp::AddSubtask { subtask })
    }

    /// Appends a subtask removal.
    #[must_use]
    pub fn remove_subtask(self, subtask: SubtaskId) -> Self {
        self.push(DeltaOp::RemoveSubtask { subtask })
    }

    /// Appends an edge insertion.
    #[must_use]
    pub fn add_edge(self, src: SubtaskId, dst: SubtaskId, items: u64) -> Self {
        self.push(DeltaOp::AddEdge { src, dst, items })
    }

    /// Appends an edge removal.
    #[must_use]
    pub fn remove_edge(self, src: SubtaskId, dst: SubtaskId) -> Self {
        self.push(DeltaOp::RemoveEdge { src, dst })
    }

    /// Appends a pin (move).
    #[must_use]
    pub fn pin(self, subtask: SubtaskId, processor: ProcessorId) -> Self {
        self.push(DeltaOp::Pin { subtask, processor })
    }

    /// Appends an unpin.
    #[must_use]
    pub fn unpin(self, subtask: SubtaskId) -> Self {
        self.push(DeltaOp::Unpin { subtask })
    }

    /// The ops in application order.
    pub fn ops(&self) -> &[DeltaOp] {
        &self.ops
    }

    /// Returns `true` when the delta contains no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether every op only rewrites subtask attributes (WCET and anchor
    /// values). Attribute-only deltas take the in-place
    /// [`apply`](GraphDelta::apply) fast path; anything else (structure or
    /// pinning) forces the full builder rebuild — and, downstream, a full
    /// re-trial instead of schedule repair.
    pub fn is_attribute_only(&self) -> bool {
        self.ops.iter().all(|op| {
            matches!(
                op,
                DeltaOp::SetWcet { .. } | DeltaOp::SetRelease { .. } | DeltaOp::SetDeadline { .. }
            )
        })
    }

    /// Applies every op in order to a working copy of `graph` + `pinning`
    /// and rebuilds through the ordinary builder, so the result satisfies
    /// every invariant a from-scratch graph does (acyclic, anchored inputs
    /// and outputs, positive WCETs, positive messages).
    ///
    /// # Errors
    ///
    /// [`DeltaError::UnknownSubtask`] / [`DeltaError::UnknownEdge`] when an
    /// op references something that does not exist at its point in the
    /// sequence; [`DeltaError::Graph`] when the rebuilt graph fails builder
    /// validation. On error nothing is produced and the inputs are
    /// untouched.
    pub fn apply(&self, graph: &TaskGraph, pinning: &Pinning) -> Result<Applied, DeltaError> {
        if let Some(applied) = self.apply_attributes_only(graph, pinning)? {
            return Ok(applied);
        }
        let mut subs: Vec<Subtask> = graph
            .subtask_ids()
            .map(|id| graph.subtask(id).clone())
            .collect();
        let mut edges: Vec<(usize, usize, u64)> = graph
            .edge_ids()
            .map(|eid| {
                let e = graph.edge(eid);
                (e.src().index(), e.dst().index(), e.items())
            })
            .collect();
        let mut pins: Vec<Option<ProcessorId>> = (0..subs.len())
            .map(|i| pinning.processor_for(SubtaskId::new(i as u32)))
            .collect();

        let check = |id: SubtaskId, len: usize| -> Result<usize, DeltaError> {
            if id.index() < len {
                Ok(id.index())
            } else {
                Err(DeltaError::UnknownSubtask(id))
            }
        };

        for op in &self.ops {
            match op {
                DeltaOp::SetWcet { subtask, wcet } => {
                    let i = check(*subtask, subs.len())?;
                    subs[i].set_wcet(*wcet);
                }
                DeltaOp::SetRelease { subtask, release } => {
                    let i = check(*subtask, subs.len())?;
                    subs[i].set_release(*release);
                }
                DeltaOp::SetDeadline { subtask, deadline } => {
                    let i = check(*subtask, subs.len())?;
                    subs[i].set_deadline(*deadline);
                }
                DeltaOp::AddSubtask { subtask } => {
                    subs.push(subtask.clone());
                    pins.push(None);
                }
                DeltaOp::RemoveSubtask { subtask } => {
                    let i = check(*subtask, subs.len())?;
                    subs.remove(i);
                    pins.remove(i);
                    edges.retain(|&(s, d, _)| s != i && d != i);
                    for e in &mut edges {
                        if e.0 > i {
                            e.0 -= 1;
                        }
                        if e.1 > i {
                            e.1 -= 1;
                        }
                    }
                }
                DeltaOp::AddEdge { src, dst, items } => {
                    let s = check(*src, subs.len())?;
                    let d = check(*dst, subs.len())?;
                    edges.push((s, d, *items));
                }
                DeltaOp::RemoveEdge { src, dst } => {
                    let s = check(*src, subs.len())?;
                    let d = check(*dst, subs.len())?;
                    let pos = edges
                        .iter()
                        .position(|&(es, ed, _)| es == s && ed == d)
                        .ok_or(DeltaError::UnknownEdge(*src, *dst))?;
                    edges.remove(pos);
                }
                DeltaOp::Pin { subtask, processor } => {
                    let i = check(*subtask, subs.len())?;
                    pins[i] = Some(*processor);
                }
                DeltaOp::Unpin { subtask } => {
                    let i = check(*subtask, subs.len())?;
                    pins[i] = None;
                }
            }
        }

        let mut b = TaskGraph::builder();
        let ids: Vec<SubtaskId> = subs.into_iter().map(|s| b.add_subtask(s)).collect();
        for (s, d, items) in edges {
            b.add_edge(ids[s], ids[d], items)?;
        }
        let graph = b.build()?;

        let mut pinning = Pinning::new();
        for (i, p) in pins.into_iter().enumerate() {
            if let Some(p) = p {
                pinning
                    .pin(ids[i], p)
                    .unwrap_or_else(|e: PlatformError| unreachable!("fresh pinning: {e}"));
            }
        }

        Ok(Applied { graph, pinning })
    }

    /// Fast path for deltas that only rewrite subtask attributes (WCET and
    /// anchor values): clones the graph and mutates it in place via
    /// [`TaskGraph::try_update_subtasks`], skipping the full builder
    /// rebuild. Sound because attribute ops cannot change the structure
    /// the builder derives (adjacency, topological order, input/output
    /// sets), and the in-place update re-checks exactly the attribute
    /// invariants the builder would. Returns `Ok(None)` when any op is
    /// structural or touches the pinning, deferring to the rebuild path.
    ///
    /// Errors and results are identical to the rebuild path: ids are
    /// checked in op order first, attribute invariants afterwards — the
    /// same observable sequence the builder-based path produces.
    fn apply_attributes_only(
        &self,
        graph: &TaskGraph,
        pinning: &Pinning,
    ) -> Result<Option<Applied>, DeltaError> {
        if !self.is_attribute_only() {
            return Ok(None);
        }
        let n = graph.subtask_count();
        for op in &self.ops {
            let id = match op {
                DeltaOp::SetWcet { subtask, .. }
                | DeltaOp::SetRelease { subtask, .. }
                | DeltaOp::SetDeadline { subtask, .. } => *subtask,
                _ => unreachable!("attribute-only checked above"),
            };
            if id.index() >= n {
                return Err(DeltaError::UnknownSubtask(id));
            }
        }
        let mut graph = graph.clone();
        graph.try_update_subtasks(|subs| {
            for op in &self.ops {
                match op {
                    DeltaOp::SetWcet { subtask, wcet } => subs[subtask.index()].set_wcet(*wcet),
                    DeltaOp::SetRelease { subtask, release } => {
                        subs[subtask.index()].set_release(*release)
                    }
                    DeltaOp::SetDeadline { subtask, deadline } => {
                        subs[subtask.index()].set_deadline(*deadline)
                    }
                    _ => unreachable!("attribute-only checked above"),
                }
            }
        })?;
        Ok(Some(Applied {
            graph,
            pinning: pinning.clone(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_round_trip_through_serde() {
        let delta = GraphDelta::new()
            .set_wcet(SubtaskId::new(1), Time::new(25))
            .add_subtask(Subtask::new(Time::new(10)).due_at(Time::new(90)))
            .add_edge(SubtaskId::new(0), SubtaskId::new(2), 7)
            .pin(SubtaskId::new(0), ProcessorId::new(3));
        let json = serde_json::to_string(&delta).unwrap();
        let parsed: GraphDelta = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, delta);
    }

    #[test]
    fn attribute_only_classification() {
        let attrs = GraphDelta::new()
            .set_wcet(SubtaskId::new(0), Time::new(5))
            .set_release(SubtaskId::new(1), None)
            .set_deadline(SubtaskId::new(1), Some(Time::new(50)));
        assert!(attrs.is_attribute_only());
        assert!(GraphDelta::new().is_attribute_only(), "empty delta");
        assert!(!attrs
            .clone()
            .remove_edge(SubtaskId::new(0), SubtaskId::new(1))
            .is_attribute_only());
        assert!(!GraphDelta::new()
            .pin(SubtaskId::new(0), ProcessorId::new(0))
            .is_attribute_only());
    }

    fn diamond() -> TaskGraph {
        let mut b = TaskGraph::builder();
        let a = b.add_subtask(Subtask::new(Time::new(10)).released_at(Time::ZERO));
        let x = b.add_subtask(Subtask::new(Time::new(60)));
        let y = b.add_subtask(Subtask::new(Time::new(20)));
        let d = b.add_subtask(Subtask::new(Time::new(10)).due_at(Time::new(200)));
        b.add_edge(a, x, 1).unwrap();
        b.add_edge(a, y, 1).unwrap();
        b.add_edge(x, d, 1).unwrap();
        b.add_edge(y, d, 1).unwrap();
        b.build().unwrap()
    }

    fn id(i: u32) -> SubtaskId {
        SubtaskId::new(i)
    }

    #[test]
    fn empty_delta_is_identity() {
        let g = diamond();
        let applied = GraphDelta::new().apply(&g, &Pinning::new()).unwrap();
        assert_eq!(applied.graph, g);
        assert!(applied.pinning.is_empty());
    }

    #[test]
    fn wcet_and_anchor_edits() {
        let g = diamond();
        let delta = GraphDelta::new()
            .set_wcet(id(1), Time::new(75))
            .set_release(id(0), Some(Time::new(5)))
            .set_deadline(id(3), Some(Time::new(300)));
        let applied = delta.apply(&g, &Pinning::new()).unwrap();
        assert_eq!(applied.graph.subtask(id(1)).wcet(), Time::new(75));
        assert_eq!(applied.graph.subtask(id(0)).release(), Some(Time::new(5)));
        assert_eq!(
            applied.graph.subtask(id(3)).deadline(),
            Some(Time::new(300))
        );
        // Untouched structure survives verbatim.
        assert_eq!(applied.graph.edge_count(), 4);
    }

    #[test]
    fn remove_subtask_renumbers_and_drops_incident_edges_and_pin() {
        let g = diamond();
        let mut pins = Pinning::new();
        pins.pin(id(1), ProcessorId::new(0)).unwrap();
        pins.pin(id(2), ProcessorId::new(1)).unwrap();
        let applied = GraphDelta::new()
            .remove_subtask(id(1))
            .apply(&g, &pins)
            .unwrap();
        // a -> y -> d survives; x and its two edges are gone; y is now id 1.
        assert_eq!(applied.graph.subtask_count(), 3);
        assert_eq!(applied.graph.edge_count(), 2);
        assert_eq!(applied.graph.subtask(id(1)).wcet(), Time::new(20));
        // x's pin is dropped, y's pin follows the renumbering.
        assert_eq!(applied.pinning.len(), 1);
        assert_eq!(
            applied.pinning.processor_for(id(1)),
            Some(ProcessorId::new(1))
        );
    }

    #[test]
    fn add_subtask_and_edges() {
        let g = diamond();
        let delta = GraphDelta::new()
            .add_subtask(Subtask::new(Time::new(30)).due_at(Time::new(250)))
            .add_edge(id(3), id(4), 7);
        let applied = delta.apply(&g, &Pinning::new()).unwrap();
        assert_eq!(applied.graph.subtask_count(), 5);
        assert_eq!(applied.graph.edge_count(), 5);
        assert_eq!(applied.graph.subtask(id(4)).wcet(), Time::new(30));
    }

    #[test]
    fn remove_edge_requires_existence() {
        let g = diamond();
        let ok = GraphDelta::new()
            .remove_edge(id(0), id(1))
            .apply(&g, &Pinning::new());
        // Removing a -> x leaves x without a release anchor: builder error.
        assert!(matches!(
            ok,
            Err(DeltaError::Graph(GraphError::MissingRelease(_)))
        ));
        assert_eq!(
            GraphDelta::new()
                .remove_edge(id(1), id(2))
                .apply(&g, &Pinning::new()),
            Err(DeltaError::UnknownEdge(id(1), id(2)))
        );
    }

    #[test]
    fn pin_move_and_unpin() {
        let g = diamond();
        let mut pins = Pinning::new();
        pins.pin(id(0), ProcessorId::new(0)).unwrap();
        let applied = GraphDelta::new()
            .pin(id(0), ProcessorId::new(3))
            .pin(id(2), ProcessorId::new(1))
            .unpin(id(2))
            .apply(&g, &pins)
            .unwrap();
        assert_eq!(
            applied.pinning.processor_for(id(0)),
            Some(ProcessorId::new(3))
        );
        assert!(!applied.pinning.is_pinned(id(2)));
    }

    #[test]
    fn unknown_subtask_is_rejected_before_rebuild() {
        let g = diamond();
        assert_eq!(
            GraphDelta::new()
                .set_wcet(id(9), Time::new(1))
                .apply(&g, &Pinning::new()),
            Err(DeltaError::UnknownSubtask(id(9)))
        );
    }

    #[test]
    fn invalid_rebuild_is_rejected() {
        let g = diamond();
        // A non-positive WCET passes the op stage but fails the builder.
        let err = GraphDelta::new()
            .set_wcet(id(1), Time::ZERO)
            .apply(&g, &Pinning::new());
        assert!(matches!(
            err,
            Err(DeltaError::Graph(GraphError::NonPositiveWcet(_)))
        ));
        // Error display is useful.
        let msg = err.unwrap_err().to_string();
        assert!(msg.contains("invalid graph"), "{msg}");
    }

    #[test]
    fn ops_compose_sequentially_with_renumbering() {
        let g = diamond();
        // Remove x (id 1); afterwards y is id 1 and d is id 2, so the WCET
        // edit below targets y under its *new* number.
        let applied = GraphDelta::new()
            .remove_subtask(id(1))
            .set_wcet(id(1), Time::new(99))
            .apply(&g, &Pinning::new())
            .unwrap();
        assert_eq!(applied.graph.subtask(id(1)).wcet(), Time::new(99));
    }

    /// The attribute-only fast path must be observationally identical to
    /// the builder rebuild. Forcing the rebuild by appending a structural
    /// no-op (add then remove a fresh edge) makes the two comparable on
    /// the same net mutation.
    #[test]
    fn attribute_fast_path_matches_the_rebuild_path() {
        let g = diamond();
        let mut pins = Pinning::new();
        pins.pin(id(2), ProcessorId::new(1)).unwrap();
        let attrs = GraphDelta::new()
            .set_wcet(id(1), Time::new(75))
            .set_release(id(0), Some(Time::new(5)))
            .set_deadline(id(3), Some(Time::new(300)));
        let fast = attrs.clone().apply(&g, &pins).unwrap();
        // No other x→y edge exists, so remove drops exactly the added one.
        let slow = attrs
            .add_edge(id(1), id(2), 3)
            .remove_edge(id(1), id(2))
            .apply(&g, &pins)
            .unwrap();
        assert_eq!(fast.graph, slow.graph);
        assert_eq!(fast.pinning, slow.pinning);
    }

    #[test]
    fn attribute_fast_path_reports_rebuild_errors() {
        let g = diamond();
        assert!(matches!(
            GraphDelta::new()
                .set_wcet(id(1), Time::ZERO)
                .apply(&g, &Pinning::new()),
            Err(DeltaError::Graph(GraphError::NonPositiveWcet(v))) if v == id(1)
        ));
        assert!(matches!(
            GraphDelta::new()
                .set_release(id(0), None)
                .apply(&g, &Pinning::new()),
            Err(DeltaError::Graph(GraphError::MissingRelease(v))) if v == id(0)
        ));
        assert!(matches!(
            GraphDelta::new()
                .set_wcet(id(9), Time::new(5))
                .apply(&g, &Pinning::new()),
            Err(DeltaError::UnknownSubtask(v)) if v == id(9)
        ));
    }
}
