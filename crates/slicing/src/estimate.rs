//! Communication-cost estimation strategies (§5.4).
//!
//! Under relaxed locality constraints the distributor does not know which
//! subtask pairs will communicate across processors, so the cost of each
//! communication subtask must be *estimated*:
//!
//! * [`CommEstimate::Ccne`] — *Communication Cost Non-Existing*: assume no
//!   interprocessor communication ever happens. Communication subtasks are
//!   transparent and all slack stays with the computation subtasks. The
//!   paper finds this the better strategy, and AST builds on it.
//! * [`CommEstimate::Ccaa`] — *Communication Cost Always Assumed*: assume
//!   every message crosses processors at the platform's worst-case per-item
//!   cost. Communication subtasks consume path slack.
//! * [`CommEstimate::Known`] — real costs from a (complete) assignment; this
//!   recovers the strict-locality setting of the original BST and is used by
//!   the ablation experiments.

use platform::{Pinning, Platform};
use serde::{Deserialize, Serialize};
use taskgraph::{Edge, Time};

/// A strategy for estimating the communication cost of a message before the
/// task assignment is known.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum CommEstimate {
    /// Communication Cost Non-Existing: every message is assumed free.
    Ccne,
    /// Communication Cost Always Assumed: every message is assumed remote at
    /// the platform's worst-case per-item cost.
    Ccaa,
    /// Real communication costs from a pre-existing (ideally total) task
    /// assignment. Messages with an unpinned endpoint fall back to the
    /// worst-case remote cost.
    Known(Pinning),
}

impl CommEstimate {
    /// The estimated cost of transferring `edge`'s message on `platform`.
    ///
    /// A zero cost means the communication subtask is *negligible*: it will
    /// not receive an execution window (§4.2).
    ///
    /// # Examples
    ///
    /// ```
    /// use platform::Platform;
    /// use slicing::CommEstimate;
    /// use taskgraph::{Subtask, TaskGraph, Time};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut b = TaskGraph::builder();
    /// let a = b.add_subtask(Subtask::new(Time::new(5)).released_at(Time::ZERO));
    /// let z = b.add_subtask(Subtask::new(Time::new(5)).due_at(Time::new(50)));
    /// b.add_edge(a, z, 12)?;
    /// let g = b.build()?;
    /// let platform = Platform::paper(4)?;
    /// let edge = g.edge(g.edge_ids().next().unwrap());
    /// assert_eq!(CommEstimate::Ccne.estimated_cost(edge, &platform), Time::ZERO);
    /// assert_eq!(CommEstimate::Ccaa.estimated_cost(edge, &platform), Time::new(12));
    /// # Ok(())
    /// # }
    /// ```
    pub fn estimated_cost(&self, edge: Edge, platform: &Platform) -> Time {
        match self {
            CommEstimate::Ccne => Time::ZERO,
            CommEstimate::Ccaa => worst_case(edge, platform),
            CommEstimate::Known(pins) => {
                match (
                    pins.processor_for(edge.src()),
                    pins.processor_for(edge.dst()),
                ) {
                    (Some(from), Some(to)) => platform
                        .comm_cost(from, to, edge.items())
                        .unwrap_or_else(|_| worst_case(edge, platform)),
                    _ => worst_case(edge, platform),
                }
            }
        }
    }

    /// A short label used in reports (`"CCNE"`, `"CCAA"`, `"KNOWN"`).
    pub fn label(&self) -> &'static str {
        match self {
            CommEstimate::Ccne => "CCNE",
            CommEstimate::Ccaa => "CCAA",
            CommEstimate::Known(_) => "KNOWN",
        }
    }
}

fn worst_case(edge: Edge, platform: &Platform) -> Time {
    platform.worst_case_cost_per_item() * edge.items() as i64
}

#[cfg(test)]
mod tests {
    use platform::{Pinning, ProcessorId, Topology};
    use taskgraph::{Subtask, SubtaskId, TaskGraph};

    use super::*;

    fn graph_with_edge(items: u64) -> (TaskGraph, Edge) {
        let mut b = TaskGraph::builder();
        let a = b.add_subtask(Subtask::new(Time::new(5)).released_at(Time::ZERO));
        let z = b.add_subtask(Subtask::new(Time::new(5)).due_at(Time::new(50)));
        b.add_edge(a, z, items).unwrap();
        let g = b.build().unwrap();
        let e = g.edge(g.edge_ids().next().unwrap());
        (g, e)
    }

    #[test]
    fn ccne_is_always_free() {
        let (_, e) = graph_with_edge(100);
        let p = Platform::paper(8).unwrap();
        assert_eq!(CommEstimate::Ccne.estimated_cost(e, &p), Time::ZERO);
        assert_eq!(CommEstimate::Ccne.label(), "CCNE");
    }

    #[test]
    fn ccaa_uses_worst_case() {
        let (_, e) = graph_with_edge(10);
        let bus = Platform::paper(8).unwrap();
        assert_eq!(CommEstimate::Ccaa.estimated_cost(e, &bus), Time::new(10));
        let ring = Platform::homogeneous(
            8,
            Topology::Ring {
                cost_per_item_hop: Time::new(1),
            },
        )
        .unwrap();
        // worst case on an 8-ring is 4 hops
        assert_eq!(CommEstimate::Ccaa.estimated_cost(e, &ring), Time::new(40));
        assert_eq!(CommEstimate::Ccaa.label(), "CCAA");
    }

    #[test]
    fn known_uses_real_costs() {
        let (_, e) = graph_with_edge(10);
        let p = Platform::paper(4).unwrap();

        let mut same = Pinning::new();
        same.pin(SubtaskId::new(0), ProcessorId::new(2)).unwrap();
        same.pin(SubtaskId::new(1), ProcessorId::new(2)).unwrap();
        assert_eq!(CommEstimate::Known(same).estimated_cost(e, &p), Time::ZERO);

        let mut remote = Pinning::new();
        remote.pin(SubtaskId::new(0), ProcessorId::new(0)).unwrap();
        remote.pin(SubtaskId::new(1), ProcessorId::new(3)).unwrap();
        assert_eq!(
            CommEstimate::Known(remote).estimated_cost(e, &p),
            Time::new(10)
        );
    }

    #[test]
    fn known_falls_back_to_worst_case_for_unpinned() {
        let (_, e) = graph_with_edge(7);
        let p = Platform::paper(4).unwrap();
        let mut partial = Pinning::new();
        partial.pin(SubtaskId::new(0), ProcessorId::new(0)).unwrap();
        assert_eq!(
            CommEstimate::Known(partial).estimated_cost(e, &p),
            Time::new(7)
        );
        assert_eq!(CommEstimate::Known(Pinning::new()).label(), "KNOWN");
    }
}
