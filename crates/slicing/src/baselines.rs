//! Classic deadline-distribution baselines from the related work (§2).
//!
//! Kao & Garcia-Molina's strategies for distributing end-to-end deadlines
//! (ICDCS '93/'94, [6, 7] in the paper) predate slicing and assign
//! *overlapping* execution windows (dynamic positions in time) rather than
//! the disjoint slices of BST/AST:
//!
//! * **Ultimate Deadline (UD)** — every subtask inherits the end-to-end
//!   deadline of its downstream outputs verbatim. Trivial, but upstream
//!   subtasks see deadlines far looser than they can afford.
//! * **Effective Deadline (ED)** — every subtask's deadline is the
//!   end-to-end deadline minus the worst-case execution time still ahead of
//!   it (its longest downstream chain, excluding itself).
//!
//! Both are provided as additional [`DeadlineAssignment`] producers so that
//! the slicing techniques can be compared against the pre-slicing state of
//! the art under the same scheduler. Release times are set to each
//! subtask's earliest possible start (ignoring communication), which keeps
//! the time-driven scheduler's release constraint a true lower bound.
//!
//! Unlike slices, these windows overlap along precedence edges by design;
//! [`DeadlineAssignment::validate`] therefore reports edge-ordering
//! "violations" for them — that is the structural property the slicing
//! techniques add, not a bug in the baselines.

use serde::{Deserialize, Serialize};
use taskgraph::{TaskGraph, Time};

use crate::{DeadlineAssignment, Window};

/// A pre-slicing deadline-distribution strategy from the literature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum BaselineStrategy {
    /// Ultimate Deadline: inherit the downstream end-to-end deadline.
    Ultimate,
    /// Effective Deadline: downstream end-to-end deadline minus the longest
    /// chain of remaining successor work.
    Effective,
}

impl BaselineStrategy {
    /// A short label used in reports (`"UD"`, `"ED"`).
    pub fn label(self) -> &'static str {
        match self {
            BaselineStrategy::Ultimate => "UD",
            BaselineStrategy::Effective => "ED",
        }
    }
}

/// Distributes end-to-end deadlines with a classic baseline strategy.
///
/// Every subtask receives:
///
/// * release = its earliest possible start (longest predecessor chain by
///   execution time, from the inputs' given release times);
/// * absolute deadline = per the strategy (see [`BaselineStrategy`]),
///   clamped to be no earlier than `release + wcet` so windows are always
///   long enough to hold their subtask.
///
/// Communication subtasks receive no windows (messages are handled like
/// CCNE).
///
/// # Examples
///
/// ```
/// use slicing::{distribute_baseline, BaselineStrategy};
/// use taskgraph::{Subtask, TaskGraph, Time};
///
/// # fn main() -> Result<(), taskgraph::GraphError> {
/// let mut b = TaskGraph::builder();
/// let a = b.add_subtask(Subtask::new(Time::new(10)).released_at(Time::ZERO));
/// let z = b.add_subtask(Subtask::new(Time::new(20)).due_at(Time::new(100)));
/// b.add_edge(a, z, 1)?;
/// let g = b.build()?;
///
/// let ud = distribute_baseline(&g, BaselineStrategy::Ultimate);
/// assert_eq!(ud.absolute_deadline(a), Time::new(100)); // inherits D
/// let ed = distribute_baseline(&g, BaselineStrategy::Effective);
/// assert_eq!(ed.absolute_deadline(a), Time::new(80));  // D - c(z)
/// # Ok(())
/// # }
/// ```
pub fn distribute_baseline(graph: &TaskGraph, strategy: BaselineStrategy) -> DeadlineAssignment {
    let n = graph.subtask_count();

    // Earliest starts: forward pass over the longest predecessor chain.
    let mut est = vec![Time::ZERO; n];
    for &v in graph.topological_order() {
        let own_release = graph.subtask(v).release().unwrap_or(Time::ZERO);
        let pred_finish = graph
            .predecessors(v)
            .map(|p| est[p.index()] + graph.subtask(p).wcet())
            .max()
            .unwrap_or(Time::ZERO);
        est[v.index()] = own_release.max(pred_finish);
    }

    // Deadlines: backward pass.
    //   UD: min over successors' UD, anchored at outputs' given deadlines.
    //   ED: min over successors of (ED(s) − c(s)), same anchors.
    let mut deadline = vec![Time::MAX; n];
    for &v in graph.topological_order().iter().rev() {
        let mut d = graph.subtask(v).deadline().unwrap_or(Time::MAX);
        for s in graph.successors(v) {
            let via = match strategy {
                BaselineStrategy::Ultimate => deadline[s.index()],
                BaselineStrategy::Effective => deadline[s.index()] - graph.subtask(s).wcet(),
            };
            d = d.min(via);
        }
        deadline[v.index()] = d;
    }

    let windows: Vec<Window> = graph
        .subtask_ids()
        .map(|id| {
            let release = est[id.index()];
            let floor = release + graph.subtask(id).wcet();
            Window::new(release, deadline[id.index()].max(floor))
        })
        .collect();
    let comm_windows = vec![None; graph.edge_count()];

    DeadlineAssignment::new(
        windows,
        comm_windows,
        0,
        strategy.label().to_owned(),
        "CCNE".to_owned(),
    )
}

#[cfg(test)]
mod tests {
    use taskgraph::{Subtask, SubtaskId};

    use super::*;

    /// chain a(10) -> b(20) -> c(30), D = 200, release 5.
    fn chain() -> TaskGraph {
        let mut b = TaskGraph::builder();
        let a = b.add_subtask(Subtask::new(Time::new(10)).released_at(Time::new(5)));
        let x = b.add_subtask(Subtask::new(Time::new(20)));
        let z = b.add_subtask(Subtask::new(Time::new(30)).due_at(Time::new(200)));
        b.add_edge(a, x, 1).unwrap();
        b.add_edge(x, z, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn ultimate_inherits_end_to_end_deadline() {
        let g = chain();
        let ud = distribute_baseline(&g, BaselineStrategy::Ultimate);
        for id in g.subtask_ids() {
            assert_eq!(ud.absolute_deadline(id), Time::new(200));
        }
        // Releases are earliest starts from the given release.
        assert_eq!(ud.release(SubtaskId::new(0)), Time::new(5));
        assert_eq!(ud.release(SubtaskId::new(1)), Time::new(15));
        assert_eq!(ud.release(SubtaskId::new(2)), Time::new(35));
        assert_eq!(ud.metric_name(), "UD");
    }

    #[test]
    fn effective_subtracts_downstream_work() {
        let g = chain();
        let ed = distribute_baseline(&g, BaselineStrategy::Effective);
        assert_eq!(ed.absolute_deadline(SubtaskId::new(2)), Time::new(200));
        assert_eq!(ed.absolute_deadline(SubtaskId::new(1)), Time::new(170));
        assert_eq!(ed.absolute_deadline(SubtaskId::new(0)), Time::new(150));
        assert_eq!(ed.metric_name(), "ED");
    }

    #[test]
    fn effective_takes_min_over_branches() {
        // a -> {b(40) -> out1(D=100), c(10) -> out2(D=90)}
        let mut b = TaskGraph::builder();
        let a = b.add_subtask(Subtask::new(Time::new(5)).released_at(Time::ZERO));
        let heavy = b.add_subtask(Subtask::new(Time::new(40)).due_at(Time::new(100)));
        let light = b.add_subtask(Subtask::new(Time::new(10)).due_at(Time::new(90)));
        b.add_edge(a, heavy, 1).unwrap();
        b.add_edge(a, light, 1).unwrap();
        let g = b.build().unwrap();
        let ed = distribute_baseline(&g, BaselineStrategy::Effective);
        // Via heavy: 100 - 40 = 60; via light: 90 - 10 = 80.
        assert_eq!(ed.absolute_deadline(a), Time::new(60));
        let ud = distribute_baseline(&g, BaselineStrategy::Ultimate);
        // UD: min(100, 90) = 90.
        assert_eq!(ud.absolute_deadline(a), Time::new(90));
    }

    #[test]
    fn effective_is_never_later_than_ultimate() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use taskgraph::gen::{generate, ExecVariation, WorkloadSpec};
        for seed in 0..6 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = generate(&WorkloadSpec::paper(ExecVariation::Mdet), &mut rng).unwrap();
            let ud = distribute_baseline(&g, BaselineStrategy::Ultimate);
            let ed = distribute_baseline(&g, BaselineStrategy::Effective);
            for id in g.subtask_ids() {
                assert!(
                    ed.absolute_deadline(id) <= ud.absolute_deadline(id),
                    "seed {seed} {id}"
                );
                // Windows always hold their subtask.
                assert!(
                    ed.window(id).relative_deadline() >= g.subtask(id).wcet()
                        || ed.absolute_deadline(id) == ed.release(id) + g.subtask(id).wcet()
                );
            }
        }
    }

    #[test]
    fn deadline_clamped_to_fit_execution() {
        // Infeasible chain: 2 × 50 with D = 60. ED would give the head a
        // deadline of 10 < est + c = 50; the window is clamped.
        let mut b = TaskGraph::builder();
        let a = b.add_subtask(Subtask::new(Time::new(50)).released_at(Time::ZERO));
        let z = b.add_subtask(Subtask::new(Time::new(50)).due_at(Time::new(60)));
        b.add_edge(a, z, 1).unwrap();
        let g = b.build().unwrap();
        let ed = distribute_baseline(&g, BaselineStrategy::Effective);
        assert_eq!(ed.absolute_deadline(a), Time::new(50));
        assert_eq!(ed.window(a).relative_deadline(), Time::new(50));
    }

    #[test]
    fn labels() {
        assert_eq!(BaselineStrategy::Ultimate.label(), "UD");
        assert_eq!(BaselineStrategy::Effective.label(), "ED");
    }

    #[test]
    fn baseline_schedules_under_the_list_scheduler() {
        // Baselines drive the same scheduler; windows overlap but the
        // schedule itself must stay structurally valid.
        use platform::Platform;
        let g = chain();
        let p = Platform::paper(2).unwrap();
        for strategy in [BaselineStrategy::Ultimate, BaselineStrategy::Effective] {
            let asg = distribute_baseline(&g, strategy);
            let schedule = sched_for_test(&g, &p, &asg);
            assert!(schedule.is_some(), "{}", strategy.label());
        }

        fn sched_for_test(g: &TaskGraph, p: &Platform, asg: &DeadlineAssignment) -> Option<()> {
            // The sched crate depends on slicing, so tests here cannot use
            // it without a cycle; emulate the check by validating windows.
            for id in g.subtask_ids() {
                if asg.window(id).relative_deadline() < g.subtask(id).wcet() {
                    return None;
                }
            }
            let _ = p;
            Some(())
        }
    }
}
