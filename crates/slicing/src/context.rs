//! Workload/system context consumed by slicing metrics.

use platform::Platform;
use taskgraph::analysis::GraphAnalysis;
use taskgraph::TaskGraph;

/// Aggregate workload and system quantities that parameterize the adaptive
/// metrics of §7.
///
/// * `mean_exec_time` — the MET, anchoring the execution-time threshold
///   c_thres;
/// * `avg_parallelism` — ξ, the total task-graph workload divided by the
///   execution-time length of the longest path. Paths in this task model
///   alternate computation and communication subtasks, so the longest
///   path's length includes message costs at the platform's nominal
///   per-item cost;
/// * `processors` — N_proc, the system size.
///
/// Computed once per distribution via [`MetricContext::for_workload`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricContext {
    /// Mean subtask execution time (MET) of the task graph.
    pub mean_exec_time: f64,
    /// Average task graph parallelism ξ.
    pub avg_parallelism: f64,
    /// Number of processors N_proc in the target system.
    pub processors: usize,
}

impl MetricContext {
    /// Computes the context for distributing `graph` onto `platform`.
    ///
    /// # Examples
    ///
    /// ```
    /// use platform::Platform;
    /// use slicing::MetricContext;
    /// use taskgraph::{Subtask, TaskGraph, Time};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut b = TaskGraph::builder();
    /// b.add_subtask(Subtask::new(Time::new(20)).released_at(Time::ZERO).due_at(Time::new(60)));
    /// let g = b.build()?;
    /// let ctx = MetricContext::for_workload(&g, &Platform::paper(4)?);
    /// assert_eq!(ctx.mean_exec_time, 20.0);
    /// assert_eq!(ctx.processors, 4);
    /// # Ok(())
    /// # }
    /// ```
    pub fn for_workload(graph: &TaskGraph, platform: &Platform) -> Self {
        let analysis = GraphAnalysis::new(graph);
        let per_item = platform.worst_case_cost_per_item().as_f64();
        MetricContext {
            mean_exec_time: analysis.mean_exec_time(),
            avg_parallelism: analysis.avg_parallelism_with_comm(per_item),
            processors: platform.processor_count(),
        }
    }

    /// The adaptive surplus factor ξ/N_proc used by the ADAPT metric.
    pub fn adaptive_surplus(&self) -> f64 {
        self.avg_parallelism / self.processors as f64
    }
}

#[cfg(test)]
mod tests {
    use taskgraph::{Subtask, Time};

    use super::*;

    #[test]
    fn computes_aggregates() {
        // chain a(10) -> b(30), plus parallel c(20): total 60, longest 40.
        let mut b = TaskGraph::builder();
        let a = b.add_subtask(Subtask::new(Time::new(10)).released_at(Time::ZERO));
        let x = b.add_subtask(Subtask::new(Time::new(30)).due_at(Time::new(100)));
        let c = b.add_subtask(
            Subtask::new(Time::new(20))
                .released_at(Time::ZERO)
                .due_at(Time::new(100)),
        );
        let _ = c;
        b.add_edge(a, x, 1).unwrap();
        let g = b.build().unwrap();
        let ctx = MetricContext::for_workload(&g, &Platform::paper(3).unwrap());
        assert_eq!(ctx.mean_exec_time, 20.0);
        // Longest path including the 1-item message: 10 + 1 + 30 = 41.
        assert!((ctx.avg_parallelism - 60.0 / 41.0).abs() < 1e-12);
        assert_eq!(ctx.processors, 3);
        assert!((ctx.adaptive_surplus() - 60.0 / 41.0 / 3.0).abs() < 1e-12);
    }
}
