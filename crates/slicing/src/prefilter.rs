//! Necessary-condition feasibility pre-filter: O(V+E) bounds that refuse
//! obviously hopeless graphs before the slicing DP runs.
//!
//! Both bounds are **conservative**: a rejection here implies the full
//! slice + trial pipeline also rejects, for *any* committed load. The
//! argument leans on three invariants of the surrounding crates:
//!
//! 1. [`TaskGraph`] construction rejects non-positive WCETs, so every
//!    subtask executes for at least one time unit.
//! 2. The list scheduler never starts a subtask before its **given**
//!    release (it floors every start at `graph.subtask(v).release()` in
//!    addition to the assigned window), and trials against committed load
//!    shift all windows *forward* by the admission origin — they never
//!    legalize running earlier than a given release.
//! 3. A trial admits iff the maximum lateness against assigned deadlines
//!    is non-positive, and the slicer only ever *tightens* given
//!    deadlines (assigned deadlines satisfy `assigned ≤ given` for
//!    deadline-anchored subtasks; strict-window clamping shrinks them
//!    further).
//!
//! # Chain bound
//!
//! For every subtask `v`, a lower bound `ef(v)` on its earliest possible
//! finish on an *idle* platform:
//!
//! ```text
//! ef(v) = max( release(v),                        if v is release-anchored
//!              max over predecessors p of
//!                  ef(p) + unavoidable_comm(p→v) ) + wcet(v)
//! ```
//!
//! propagated only from release-anchored subtasks (no global time floor:
//! an admission origin shift translates the whole window set, so only
//! distances *from given releases* survive translation). A message
//! contributes `unavoidable_comm` only when both endpoints are pinned to
//! distinct processors — then every bus model charges at least the
//! topology's transfer cost; otherwise the scheduler may co-locate the
//! endpoints for free and the bound uses zero. If `ef(d) > deadline(d)`
//! for a deadline-anchored `d`, no schedule — under any load, any
//! placement of the unpinned subtasks, any slicing — finishes `d` by its
//! given deadline, so the trial's lateness at `d` is strictly positive
//! and the full path rejects.
//!
//! # Capacity bound
//!
//! All execution must happen inside `[min release, max deadline]` (every
//! start is floored at a given release transitively through precedence —
//! but the aggregate form needs no precedence at all: each subtask
//! individually starts no earlier than the *minimum* given release and
//! must finish by the *maximum* given deadline to meet its own deadline).
//! `P` processors provide `P × (max deadline − min release)` units of
//! processing in that interval; if total WCET demand exceeds it, some
//! subtask finishes past the maximum deadline and the trial rejects. The
//! bound is only claimed when the graph has at least one release anchor
//! *and* every-subtask-covering deadline information exists, i.e. at
//! least one deadline anchor; without a release anchor there is no left
//! edge to the interval.
//!
//! Both bounds assume the scheduler respects given releases
//! (`respect_release`); callers must skip the pre-filter otherwise (see
//! `Pipeline::prefilter` in the `feast` crate, which gates on the
//! scenario's scheduler spec).

use platform::{Pinning, Platform};
use taskgraph::{SubtaskId, TaskGraph, Time};

/// A failed necessary condition: the graph cannot meet its deadlines
/// under any schedule, so admission can refuse it without slicing.
///
/// The [`kind`](PrefilterReject::kind) tags are part of the admission
/// WAL format contract and must never change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefilterReject {
    /// A precedence chain's earliest possible finish overshoots a given
    /// end-to-end deadline even on an idle platform.
    ChainBound {
        /// The deadline-anchored subtask that cannot make its deadline.
        subtask: SubtaskId,
        /// Lower bound on the subtask's finish time (graph-local).
        earliest_finish: Time,
        /// The given deadline it overshoots.
        deadline: Time,
    },
    /// Total WCET demand exceeds the platform's processing capacity over
    /// the `[min release, max deadline]` window.
    CapacityBound {
        /// Total WCET over all subtasks.
        demand: i128,
        /// `processors × (max deadline − min release)`, floored at zero.
        capacity: i128,
    },
}

impl PrefilterReject {
    /// The stable machine-readable tag of the failed bound:
    /// `chain-bound` or `capacity-bound`. Sealed into admission WALs —
    /// never rename.
    pub fn kind(&self) -> &'static str {
        match self {
            PrefilterReject::ChainBound { .. } => "chain-bound",
            PrefilterReject::CapacityBound { .. } => "capacity-bound",
        }
    }
}

impl std::fmt::Display for PrefilterReject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrefilterReject::ChainBound {
                subtask,
                earliest_finish,
                deadline,
            } => write!(
                f,
                "subtask {subtask:?} cannot finish before {earliest_finish} (deadline {deadline})"
            ),
            PrefilterReject::CapacityBound { demand, capacity } => write!(
                f,
                "WCET demand {demand} exceeds platform capacity {capacity} over the deadline window"
            ),
        }
    }
}

/// Runs both necessary-condition bounds over `graph`; `Some` means the
/// graph is infeasible for *any* schedule on `platform` that respects
/// given releases (see the module docs for the proof obligations).
///
/// `pins` is the pinning the trial will actually use; message delay is
/// counted only for edges whose endpoints are pinned to distinct
/// processors, so a relaxed (empty) pinning contributes no
/// communication — strictly conservative.
pub fn prefilter(
    graph: &TaskGraph,
    platform: &Platform,
    pins: Option<&Pinning>,
) -> Option<PrefilterReject> {
    if let Some(reject) = chain_bound(graph, platform, pins) {
        return Some(reject);
    }
    capacity_bound(graph, platform)
}

/// Unavoidable lower bound on the transfer delay of `src → dst`: the
/// topology cost when both are pinned to distinct processors, zero
/// otherwise (the scheduler may co-locate them).
fn unavoidable_comm(
    platform: &Platform,
    pins: Option<&Pinning>,
    src: SubtaskId,
    dst: SubtaskId,
    items: u64,
) -> i64 {
    let Some(pins) = pins else { return 0 };
    match (pins.processor_for(src), pins.processor_for(dst)) {
        (Some(a), Some(b)) if a != b => platform
            .comm_cost(a, b, items)
            .map_or(0, Time::as_i64)
            .max(0),
        _ => 0,
    }
}

fn chain_bound(
    graph: &TaskGraph,
    platform: &Platform,
    pins: Option<&Pinning>,
) -> Option<PrefilterReject> {
    // ef[v]: earliest finish reachable from a release anchor; None when no
    // release anchor precedes v (then nothing pins v to the timeline and
    // the bound claims nothing about it).
    let mut ef: Vec<Option<i64>> = vec![None; graph.subtask_count()];
    for &v in graph.topological_order() {
        let subtask = graph.subtask(v);
        let mut start: Option<i64> = subtask.release().map(Time::as_i64);
        for &eid in graph.in_edges(v) {
            let e = graph.edge(eid);
            if let Some(pf) = ef[e.src().index()] {
                let arrival = pf.saturating_add(unavoidable_comm(
                    platform,
                    pins,
                    e.src(),
                    e.dst(),
                    e.items(),
                ));
                start = Some(start.map_or(arrival, |s| s.max(arrival)));
            }
        }
        let finish = start.map(|s| s.saturating_add(subtask.wcet().as_i64()));
        if let (Some(finish), Some(deadline)) = (finish, subtask.deadline()) {
            if finish > deadline.as_i64() {
                return Some(PrefilterReject::ChainBound {
                    subtask: v,
                    earliest_finish: Time::new(finish),
                    deadline,
                });
            }
        }
        ef[v.index()] = finish;
    }
    None
}

fn capacity_bound(graph: &TaskGraph, platform: &Platform) -> Option<PrefilterReject> {
    let mut min_release: Option<i64> = None;
    let mut max_deadline: Option<i64> = None;
    let mut demand: i128 = 0;
    for &v in graph.topological_order() {
        let subtask = graph.subtask(v);
        demand += i128::from(subtask.wcet().as_i64());
        if let Some(r) = subtask.release() {
            let r = r.as_i64();
            min_release = Some(min_release.map_or(r, |m| m.min(r)));
        }
        if let Some(d) = subtask.deadline() {
            let d = d.as_i64();
            max_deadline = Some(max_deadline.map_or(d, |m| m.max(d)));
        }
    }
    let (r, d) = (min_release?, max_deadline?);
    let capacity =
        i128::from(platform.processor_count() as u64) * i128::from(d.saturating_sub(r)).max(0);
    if demand > capacity {
        return Some(PrefilterReject::CapacityBound { demand, capacity });
    }
    None
}

#[cfg(test)]
mod tests {
    use platform::{ProcessorId, Topology};
    use taskgraph::{Subtask, TaskGraphBuilder};

    use super::*;

    fn platform(n: usize) -> Platform {
        Platform::homogeneous(
            n,
            Topology::SharedBus {
                cost_per_item: Time::new(1),
            },
        )
        .unwrap()
    }

    /// in → out chain with wcets and an end-to-end deadline.
    fn chain(wcets: &[i64], deadline: i64) -> TaskGraph {
        let mut b = TaskGraphBuilder::new();
        let mut prev = None;
        let last = wcets.len() - 1;
        for (i, &w) in wcets.iter().enumerate() {
            let mut s = Subtask::new(Time::new(w));
            if i == 0 {
                s = s.released_at(Time::ZERO);
            }
            if i == last {
                s = s.due_at(Time::new(deadline));
            }
            let id = b.add_subtask(s);
            if let Some(p) = prev {
                b.add_edge(p, id, 1).unwrap();
            }
            prev = Some(id);
        }
        b.build().unwrap()
    }

    #[test]
    fn feasible_chain_passes() {
        let g = chain(&[10, 10, 10], 100);
        assert_eq!(prefilter(&g, &platform(4), None), None);
    }

    #[test]
    fn chain_bound_rejects_overlong_path() {
        let g = chain(&[40, 40, 40], 100);
        let reject = prefilter(&g, &platform(4), None).expect("must reject");
        assert_eq!(reject.kind(), "chain-bound");
        match reject {
            PrefilterReject::ChainBound {
                earliest_finish,
                deadline,
                ..
            } => {
                assert_eq!(earliest_finish, Time::new(120));
                assert_eq!(deadline, Time::new(100));
            }
            other => panic!("wrong bound: {other:?}"),
        }
    }

    #[test]
    fn chain_bound_boundary_is_exclusive() {
        // ef == deadline is feasible (lateness zero admits).
        let g = chain(&[50, 50], 100);
        assert_eq!(prefilter(&g, &platform(4), None), None);
    }

    #[test]
    fn capacity_bound_rejects_overloaded_window() {
        // 6 independent 50-unit subtasks, all in [0, 100], on 2 CPUs:
        // demand 300 > capacity 200. Chains of one node each, so the
        // chain bound passes (50 ≤ 100) and only capacity catches it.
        let mut b = TaskGraphBuilder::new();
        for _ in 0..6 {
            b.add_subtask(
                Subtask::new(Time::new(50))
                    .released_at(Time::ZERO)
                    .due_at(Time::new(100)),
            );
        }
        let g = b.build().unwrap();
        let reject = prefilter(&g, &platform(2), None).expect("must reject");
        assert_eq!(reject.kind(), "capacity-bound");
        // Four CPUs provide 400 ≥ 300: passes.
        assert_eq!(prefilter(&g, &platform(4), None), None);
    }

    #[test]
    fn late_release_shifts_the_chain() {
        // Released at 50, 30+30 wcet, due at 100: ef = 110 > 100.
        let mut b = TaskGraphBuilder::new();
        let a = b.add_subtask(Subtask::new(Time::new(30)).released_at(Time::new(50)));
        let z = b.add_subtask(Subtask::new(Time::new(30)).due_at(Time::new(100)));
        b.add_edge(a, z, 1).unwrap();
        let g = b.build().unwrap();
        let reject = prefilter(&g, &platform(4), None).expect("must reject");
        assert_eq!(reject.kind(), "chain-bound");

        // Released at zero the same chain fits (60 ≤ 100).
        let mut b = TaskGraphBuilder::new();
        let a = b.add_subtask(Subtask::new(Time::new(30)).released_at(Time::ZERO));
        let z = b.add_subtask(Subtask::new(Time::new(30)).due_at(Time::new(100)));
        b.add_edge(a, z, 1).unwrap();
        let g = b.build().unwrap();
        assert_eq!(prefilter(&g, &platform(4), None), None);
    }

    #[test]
    fn pinned_cross_processor_message_counts_toward_the_chain() {
        // 10 + 10 wcet plus a pinned 85-item transfer: ef = 105 > 100.
        // Unpinned, the same graph passes (20 ≤ 100).
        let mut b = TaskGraphBuilder::new();
        let a = b.add_subtask(Subtask::new(Time::new(10)).released_at(Time::ZERO));
        let z = b.add_subtask(Subtask::new(Time::new(10)).due_at(Time::new(100)));
        b.add_edge(a, z, 85).unwrap();
        let g = b.build().unwrap();
        let p = platform(4);
        assert_eq!(prefilter(&g, &p, None), None);

        let mut pins = Pinning::new();
        pins.pin(a, ProcessorId::new(0)).unwrap();
        pins.pin(z, ProcessorId::new(1)).unwrap();
        let reject = prefilter(&g, &p, Some(&pins)).expect("must reject");
        assert_eq!(reject.kind(), "chain-bound");

        // Co-located pins transfer for free: passes again.
        let mut same = Pinning::new();
        same.pin(a, ProcessorId::new(2)).unwrap();
        same.pin(z, ProcessorId::new(2)).unwrap();
        assert_eq!(prefilter(&g, &p, Some(&same)), None);
    }
}
