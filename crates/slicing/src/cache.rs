//! Cross-request slice cache: a bounded LRU over full slicing inputs.
//!
//! Slicing depends only on the graph, the slicer configuration and the
//! platform — never on committed load — so two requests carrying the same
//! graph may legally share one slicing run. The [`SliceKey`] captures
//! *every* input the produced [`DeadlineAssignment`] is a function of:
//!
//! * per-subtask content — WCET, given release, given deadline;
//! * the edge list — endpoints and item counts;
//! * the slicer fingerprint — metric name, estimation-strategy label,
//!   share rule, strict-windows flag;
//! * the platform (processor count, topology, costs).
//!
//! This is deliberately stronger than the structural `GraphSig` the
//! incremental memo uses: the memo only needs the *expanded shape* to
//! match (anchor and WCET changes replay incrementally), while a cache
//! hit returns the memoized output verbatim and therefore must witness
//! bit-equality of all inputs. A 64-bit content hash is precomputed for
//! cheap filtering; full key equality is confirmed on every hit, so hash
//! collisions degrade to misses of the colliding entry, never to wrong
//! output.
//!
//! The cache itself ([`SliceCache`]) is a plain bounded LRU over a vector
//! with a monotonic use-stamp — capacities are small (default 64), so a
//! linear scan beats maintaining an ordered index.
//!
//! [`DeadlineAssignment`]: crate::DeadlineAssignment

use std::hash::{Hash, Hasher};

use platform::Platform;
use taskgraph::{TaskGraph, Time};

use crate::{ShareRule, Slicer};

/// The complete set of slicing inputs, hashed for fast comparison.
/// Two equal keys guarantee bit-identical [`Slicer::distribute`] output.
///
/// [`Slicer::distribute`]: crate::Slicer::distribute
#[derive(Debug, Clone)]
pub struct SliceKey {
    hash: u64,
    metric: String,
    estimate: &'static str,
    rule: ShareRule,
    strict: bool,
    platform: Platform,
    /// Per subtask: (wcet, given release, given deadline).
    subtasks: Vec<(i64, Option<i64>, Option<i64>)>,
    /// Per edge: (src, dst, items).
    edges: Vec<(u32, u32, u64)>,
}

impl SliceKey {
    fn new(
        graph: &TaskGraph,
        metric: String,
        estimate: &'static str,
        rule: ShareRule,
        strict: bool,
        platform: &Platform,
    ) -> SliceKey {
        let subtasks: Vec<(i64, Option<i64>, Option<i64>)> = (0..graph.subtask_count())
            .map(|i| {
                let s = graph.subtask(taskgraph::SubtaskId::new(i as u32));
                (
                    s.wcet().as_i64(),
                    s.release().map(Time::as_i64),
                    s.deadline().map(Time::as_i64),
                )
            })
            .collect();
        let edges: Vec<(u32, u32, u64)> = graph
            .edge_ids()
            .map(|eid| {
                let e = graph.edge(eid);
                (e.src().index() as u32, e.dst().index() as u32, e.items())
            })
            .collect();
        // DefaultHasher with default keys is deterministic within a
        // process, which is all the in-memory cache needs (hashes are
        // never persisted or compared across processes).
        let mut h = std::collections::hash_map::DefaultHasher::new();
        metric.hash(&mut h);
        estimate.hash(&mut h);
        (match rule {
            ShareRule::EqualShare => 0u8,
            ShareRule::Proportional => 1u8,
        })
        .hash(&mut h);
        strict.hash(&mut h);
        platform.processor_count().hash(&mut h);
        platform.worst_case_cost_per_item().as_i64().hash(&mut h);
        subtasks.hash(&mut h);
        edges.hash(&mut h);
        SliceKey {
            hash: h.finish(),
            metric,
            estimate,
            rule,
            strict,
            platform: platform.clone(),
            subtasks,
            edges,
        }
    }

    /// The precomputed 64-bit content hash (a filter, not a witness).
    pub fn content_hash(&self) -> u64 {
        self.hash
    }
}

impl PartialEq for SliceKey {
    fn eq(&self, other: &Self) -> bool {
        // The hash screens out almost every mismatch; the field compare
        // behind it is what makes equality a correctness witness.
        self.hash == other.hash
            && self.strict == other.strict
            && self.rule == other.rule
            && self.estimate == other.estimate
            && self.metric == other.metric
            && self.subtasks == other.subtasks
            && self.edges == other.edges
            && self.platform == other.platform
    }
}

impl Eq for SliceKey {}

impl Slicer {
    /// The cross-request cache key for slicing `graph` on `platform` with
    /// this slicer's configuration: equal keys guarantee bit-identical
    /// [`distribute`](Slicer::distribute) output.
    pub fn cache_key(&self, graph: &TaskGraph, platform: &Platform) -> SliceKey {
        SliceKey::new(
            graph,
            self.metric_name().to_owned(),
            self.estimate_label(),
            self.metric().share_rule(),
            self.strict(),
            platform,
        )
    }
}

/// A bounded LRU mapping [`SliceKey`]s to memoized slice products.
///
/// Lookups and inserts are O(capacity) linear scans — capacities are a
/// few dozen entries, where a scan over a dense vector outruns any
/// pointer-chasing order structure.
#[derive(Debug)]
pub struct SliceCache<V> {
    capacity: usize,
    stamp: u64,
    entries: Vec<CacheEntry<V>>,
}

#[derive(Debug)]
struct CacheEntry<V> {
    key: SliceKey,
    value: V,
    last_used: u64,
}

impl<V: Clone> SliceCache<V> {
    /// An empty cache holding at most `capacity` entries (clamped to at
    /// least 1 — use no cache at all to disable caching).
    pub fn new(capacity: usize) -> SliceCache<V> {
        SliceCache {
            capacity: capacity.max(1),
            stamp: 0,
            entries: Vec::new(),
        }
    }

    /// Looks `key` up, cloning the memoized value on a hit and marking
    /// the entry most-recently used.
    pub fn get(&mut self, key: &SliceKey) -> Option<V> {
        self.stamp += 1;
        let stamp = self.stamp;
        self.entries
            .iter_mut()
            .find(|e| e.key.hash == key.hash && e.key == *key)
            .map(|e| {
                e.last_used = stamp;
                e.value.clone()
            })
    }

    /// Inserts (or refreshes) `key → value`, evicting the least-recently
    /// used entry when full. Returns `true` when an eviction happened.
    pub fn insert(&mut self, key: SliceKey, value: V) -> bool {
        self.stamp += 1;
        let stamp = self.stamp;
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.key.hash == key.hash && e.key == key)
        {
            e.value = value;
            e.last_used = stamp;
            return false;
        }
        let mut evicted = false;
        if self.entries.len() >= self.capacity {
            if let Some(lru) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
            {
                self.entries.swap_remove(lru);
                evicted = true;
            }
        }
        self.entries.push(CacheEntry {
            key,
            value,
            last_used: stamp,
        });
        evicted
    }

    /// Number of memoized entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use platform::Topology;
    use taskgraph::{Subtask, TaskGraphBuilder};

    use super::*;
    use crate::MetricKind;

    fn platform(n: usize) -> Platform {
        Platform::homogeneous(
            n,
            Topology::SharedBus {
                cost_per_item: Time::new(1),
            },
        )
        .unwrap()
    }

    fn chain(wcets: &[i64], deadline: i64) -> TaskGraph {
        let mut b = TaskGraphBuilder::new();
        let mut prev = None;
        let last = wcets.len() - 1;
        for (i, &w) in wcets.iter().enumerate() {
            let mut s = Subtask::new(Time::new(w));
            if i == 0 {
                s = s.released_at(Time::ZERO);
            }
            if i == last {
                s = s.due_at(Time::new(deadline));
            }
            let id = b.add_subtask(s);
            if let Some(p) = prev {
                b.add_edge(p, id, 1).unwrap();
            }
            prev = Some(id);
        }
        b.build().unwrap()
    }

    #[test]
    fn equal_inputs_equal_keys() {
        let slicer = Slicer::ast_adapt();
        let p = platform(4);
        let a = slicer.cache_key(&chain(&[10, 20], 100), &p);
        let b = slicer.cache_key(&chain(&[10, 20], 100), &p);
        assert_eq!(a, b);
        assert_eq!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn every_input_dimension_separates_keys() {
        let slicer = Slicer::ast_adapt();
        let p = platform(4);
        let base = slicer.cache_key(&chain(&[10, 20], 100), &p);
        // WCET content (same structure — the incremental GraphSig would
        // not distinguish these).
        let wcet = slicer.cache_key(&chain(&[10, 21], 100), &p);
        assert_ne!(base, wcet);
        // Anchor content.
        let deadline = slicer.cache_key(&chain(&[10, 20], 101), &p);
        assert_ne!(base, deadline);
        // Platform shape.
        let other_platform = slicer.cache_key(&chain(&[10, 20], 100), &platform(8));
        assert_ne!(base, other_platform);
        // Slicer configuration.
        let other_metric = Slicer::new(MetricKind::pure()).cache_key(&chain(&[10, 20], 100), &p);
        assert_ne!(base, other_metric);
        let strict = Slicer::ast_adapt()
            .with_strict_windows(true)
            .cache_key(&chain(&[10, 20], 100), &p);
        assert_ne!(base, strict);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let slicer = Slicer::ast_adapt();
        let p = platform(4);
        let k1 = slicer.cache_key(&chain(&[1, 1], 100), &p);
        let k2 = slicer.cache_key(&chain(&[2, 2], 100), &p);
        let k3 = slicer.cache_key(&chain(&[3, 3], 100), &p);

        let mut cache: SliceCache<u32> = SliceCache::new(2);
        assert!(!cache.insert(k1.clone(), 1));
        assert!(!cache.insert(k2.clone(), 2));
        // Touch k1 so k2 is the LRU victim.
        assert_eq!(cache.get(&k1), Some(1));
        assert!(cache.insert(k3.clone(), 3));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&k2), None);
        assert_eq!(cache.get(&k1), Some(1));
        assert_eq!(cache.get(&k3), Some(3));
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let slicer = Slicer::ast_adapt();
        let p = platform(4);
        let k = slicer.cache_key(&chain(&[1, 1], 100), &p);
        let mut cache: SliceCache<u32> = SliceCache::new(1);
        assert!(!cache.insert(k.clone(), 1));
        assert!(!cache.insert(k.clone(), 2));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&k), Some(2));
    }
}
