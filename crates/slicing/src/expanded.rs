//! The expanded graph: computation subtasks plus materialized communication
//! subtasks.
//!
//! The slicing algorithm operates on a graph in which every message whose
//! estimated cost is non-negligible becomes an explicit *communication
//! subtask* node χ between its producer and consumer (§4.2). Messages with a
//! zero estimated cost (CCNE, or intra-processor under a known assignment)
//! stay transparent: the producer connects directly to the consumer and no
//! window will be assigned to the message.

use platform::Platform;
use taskgraph::{EdgeId, SubtaskId, TaskGraph, Time};

use crate::CommEstimate;

/// What an expanded-graph node represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ExpKind {
    /// An ordinary computation subtask.
    Task(SubtaskId),
    /// A communication subtask materialized from the given edge.
    Comm(EdgeId),
}

/// The expanded precedence graph used by the slicing algorithm.
#[derive(Debug, Clone)]
pub(crate) struct ExpandedGraph {
    kinds: Vec<ExpKind>,
    /// Real execution time (subtasks) or estimated communication cost
    /// (communication subtasks) per node.
    weights: Vec<Time>,
    succ: Vec<Vec<usize>>,
    pred: Vec<Vec<usize>>,
    /// Expanded node index of each subtask.
    task_node: Vec<usize>,
    /// Expanded node index of each materialized communication subtask.
    comm_node: Vec<Option<usize>>,
    /// Expanded node indices in topological order.
    topo: Vec<usize>,
    /// Longest chain length in nodes (an upper bound for path search).
    max_chain: usize,
}

impl ExpandedGraph {
    /// Builds the expanded graph for `graph` under the given estimation
    /// strategy.
    pub(crate) fn build(
        graph: &TaskGraph,
        estimate: &CommEstimate,
        platform: &Platform,
    ) -> ExpandedGraph {
        let n_tasks = graph.subtask_count();
        let mut kinds: Vec<ExpKind> = Vec::with_capacity(n_tasks);
        let mut weights: Vec<Time> = Vec::with_capacity(n_tasks);
        let mut task_node = Vec::with_capacity(n_tasks);
        for id in graph.subtask_ids() {
            task_node.push(kinds.len());
            kinds.push(ExpKind::Task(id));
            weights.push(graph.subtask(id).wcet());
        }

        let mut comm_node = vec![None; graph.edge_count()];
        let mut arcs: Vec<(usize, usize)> = Vec::with_capacity(graph.edge_count() * 2);
        for eid in graph.edge_ids() {
            let edge = graph.edge(eid);
            let cost = estimate.estimated_cost(edge, platform);
            let from = task_node[edge.src().index()];
            let to = task_node[edge.dst().index()];
            if cost.is_positive() {
                let chi = kinds.len();
                kinds.push(ExpKind::Comm(eid));
                weights.push(cost);
                comm_node[eid.index()] = Some(chi);
                arcs.push((from, chi));
                arcs.push((chi, to));
            } else {
                arcs.push((from, to));
            }
        }

        let n = kinds.len();
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut pred: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (u, v) in arcs {
            succ[u].push(v);
            pred[v].push(u);
        }

        // Topological order (the expanded graph is a DAG because the source
        // graph is and χ nodes subdivide arcs).
        let mut indeg: Vec<usize> = pred.iter().map(Vec::len).collect();
        let mut topo: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut head = 0;
        while head < topo.len() {
            let v = topo[head];
            head += 1;
            for &w in &succ[v] {
                indeg[w] -= 1;
                if indeg[w] == 0 {
                    topo.push(w);
                }
            }
        }
        debug_assert_eq!(topo.len(), n, "expanded graph must remain acyclic");

        // Longest chain in nodes: path-search state bound.
        let mut chain = vec![1usize; n];
        let mut max_chain = 1;
        for &v in &topo {
            for &p in &pred[v] {
                chain[v] = chain[v].max(chain[p] + 1);
            }
            max_chain = max_chain.max(chain[v]);
        }

        ExpandedGraph {
            kinds,
            weights,
            succ,
            pred,
            task_node,
            comm_node,
            topo,
            max_chain,
        }
    }

    /// Number of expanded nodes.
    pub(crate) fn len(&self) -> usize {
        self.kinds.len()
    }

    /// What node `v` represents.
    pub(crate) fn kind(&self, v: usize) -> ExpKind {
        self.kinds[v]
    }

    /// Real execution time or estimated communication cost of node `v`.
    pub(crate) fn weight(&self, v: usize) -> Time {
        self.weights[v]
    }

    /// Successor node indices of `v`.
    pub(crate) fn succ(&self, v: usize) -> &[usize] {
        &self.succ[v]
    }

    /// Predecessor node indices of `v`.
    pub(crate) fn pred(&self, v: usize) -> &[usize] {
        &self.pred[v]
    }

    /// Expanded node index of subtask `id`.
    pub(crate) fn task_node(&self, id: SubtaskId) -> usize {
        self.task_node[id.index()]
    }

    /// Expanded node index of the communication subtask for `id`, if the
    /// message was materialized.
    pub(crate) fn comm_node(&self, id: EdgeId) -> Option<usize> {
        self.comm_node[id.index()]
    }

    /// Node indices in topological order.
    pub(crate) fn topo(&self) -> &[usize] {
        &self.topo
    }

    /// Upper bound on path length in nodes.
    pub(crate) fn max_chain(&self) -> usize {
        self.max_chain
    }
}

#[cfg(test)]
mod tests {
    use taskgraph::Subtask;

    use super::*;

    fn chain_graph() -> TaskGraph {
        let mut b = TaskGraph::builder();
        let a = b.add_subtask(Subtask::new(Time::new(10)).released_at(Time::ZERO));
        let c = b.add_subtask(Subtask::new(Time::new(20)));
        let z = b.add_subtask(Subtask::new(Time::new(30)).due_at(Time::new(500)));
        b.add_edge(a, c, 15).unwrap();
        b.add_edge(c, z, 25).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn ccne_keeps_messages_transparent() {
        let g = chain_graph();
        let p = Platform::paper(4).unwrap();
        let exp = ExpandedGraph::build(&g, &CommEstimate::Ccne, &p);
        assert_eq!(exp.len(), 3);
        assert!(g.edge_ids().all(|e| exp.comm_node(e).is_none()));
        assert_eq!(exp.max_chain(), 3);
        // Direct arcs a -> c -> z.
        let a = exp.task_node(SubtaskId::new(0));
        let c = exp.task_node(SubtaskId::new(1));
        assert_eq!(exp.succ(a), &[c]);
    }

    #[test]
    fn ccaa_materializes_comm_subtasks() {
        let g = chain_graph();
        let p = Platform::paper(4).unwrap();
        let exp = ExpandedGraph::build(&g, &CommEstimate::Ccaa, &p);
        assert_eq!(exp.len(), 5);
        assert_eq!(exp.max_chain(), 5);
        let e0 = g.edge_ids().next().unwrap();
        let chi = exp.comm_node(e0).expect("materialized");
        assert_eq!(exp.weight(chi), Time::new(15));
        assert_eq!(exp.kind(chi), ExpKind::Comm(e0));
        // a -> chi -> c
        let a = exp.task_node(SubtaskId::new(0));
        let c = exp.task_node(SubtaskId::new(1));
        assert_eq!(exp.succ(a), &[chi]);
        assert_eq!(exp.pred(c), &[chi]);
        // Topological order covers all nodes exactly once.
        let mut seen = vec![false; exp.len()];
        for &v in exp.topo() {
            assert!(!seen[v]);
            seen[v] = true;
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn weights_mirror_wcet_for_tasks() {
        let g = chain_graph();
        let p = Platform::paper(2).unwrap();
        let exp = ExpandedGraph::build(&g, &CommEstimate::Ccne, &p);
        for id in g.subtask_ids() {
            assert_eq!(exp.weight(exp.task_node(id)), g.subtask(id).wcet());
        }
    }
}
