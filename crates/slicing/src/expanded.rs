//! The expanded graph: computation subtasks plus materialized communication
//! subtasks.
//!
//! The slicing algorithm operates on a graph in which every message whose
//! estimated cost is non-negligible becomes an explicit *communication
//! subtask* node χ between its producer and consumer (§4.2). Messages with a
//! zero estimated cost (CCNE, or intra-processor under a known assignment)
//! stay transparent: the producer connects directly to the consumer and no
//! window will be assigned to the message.
//!
//! Adjacency is stored in CSR form (one offset array plus one contiguous
//! index array per direction) rather than `Vec<Vec<_>>`: the critical-path
//! search walks successor lists millions of times per slicing sweep, and the
//! flat layout keeps those walks on a handful of cache lines with no
//! per-node pointer chase.

use platform::Platform;
use taskgraph::{EdgeId, SubtaskId, TaskGraph, Time};

use crate::CommEstimate;

/// What an expanded-graph node represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ExpKind {
    /// An ordinary computation subtask.
    Task(SubtaskId),
    /// A communication subtask materialized from the given edge.
    Comm(EdgeId),
}

/// The expanded precedence graph used by the slicing algorithm.
#[derive(Debug, Clone)]
pub(crate) struct ExpandedGraph {
    kinds: Vec<ExpKind>,
    /// Real execution time (subtasks) or estimated communication cost
    /// (communication subtasks) per node.
    weights: Vec<Time>,
    /// CSR successors: node `v`'s successors are
    /// `succ_idx[succ_off[v] .. succ_off[v + 1]]`, in arc-insertion order.
    succ_off: Vec<u32>,
    succ_idx: Vec<u32>,
    /// CSR predecessors, same encoding.
    pred_off: Vec<u32>,
    pred_idx: Vec<u32>,
    /// Expanded node index of each subtask.
    task_node: Vec<usize>,
    /// Expanded node index of each materialized communication subtask.
    comm_node: Vec<Option<usize>>,
    /// Expanded node indices in topological order.
    topo: Vec<u32>,
    /// Position of each node in `topo` (inverse permutation).
    topo_pos: Vec<u32>,
    /// Longest chain length in nodes (an upper bound for path search).
    max_chain: usize,
}

/// Builds a CSR adjacency (offsets + flat index array) from an arc list,
/// preserving the per-endpoint arc order.
fn csr<F: Fn(&(usize, usize)) -> (usize, usize)>(
    n: usize,
    arcs: &[(usize, usize)],
    endpoint: F,
) -> (Vec<u32>, Vec<u32>) {
    let mut off = vec![0u32; n + 1];
    for arc in arcs {
        off[endpoint(arc).0 + 1] += 1;
    }
    for i in 0..n {
        off[i + 1] += off[i];
    }
    let mut idx = vec![0u32; arcs.len()];
    let mut cursor = off.clone();
    for arc in arcs {
        let (from, to) = endpoint(arc);
        idx[cursor[from] as usize] = to as u32;
        cursor[from] += 1;
    }
    (off, idx)
}

impl ExpandedGraph {
    /// Builds the expanded graph for `graph` under the given estimation
    /// strategy.
    pub(crate) fn build(
        graph: &TaskGraph,
        estimate: &CommEstimate,
        platform: &Platform,
    ) -> ExpandedGraph {
        let n_tasks = graph.subtask_count();
        let mut kinds: Vec<ExpKind> = Vec::with_capacity(n_tasks);
        let mut weights: Vec<Time> = Vec::with_capacity(n_tasks);
        let mut task_node = Vec::with_capacity(n_tasks);
        for id in graph.subtask_ids() {
            task_node.push(kinds.len());
            kinds.push(ExpKind::Task(id));
            weights.push(graph.subtask(id).wcet());
        }

        let mut comm_node = vec![None; graph.edge_count()];
        let mut arcs: Vec<(usize, usize)> = Vec::with_capacity(graph.edge_count() * 2);
        for eid in graph.edge_ids() {
            let edge = graph.edge(eid);
            let cost = estimate.estimated_cost(edge, platform);
            let from = task_node[edge.src().index()];
            let to = task_node[edge.dst().index()];
            if cost.is_positive() {
                let chi = kinds.len();
                kinds.push(ExpKind::Comm(eid));
                weights.push(cost);
                comm_node[eid.index()] = Some(chi);
                arcs.push((from, chi));
                arcs.push((chi, to));
            } else {
                arcs.push((from, to));
            }
        }

        let n = kinds.len();
        let (succ_off, succ_idx) = csr(n, &arcs, |&(u, v)| (u, v));
        let (pred_off, pred_idx) = csr(n, &arcs, |&(u, v)| (v, u));

        // Topological order (the expanded graph is a DAG because the source
        // graph is and χ nodes subdivide arcs).
        let mut indeg: Vec<u32> = (0..n).map(|v| pred_off[v + 1] - pred_off[v]).collect();
        let mut topo: Vec<u32> = (0..n as u32).filter(|&v| indeg[v as usize] == 0).collect();
        let mut head = 0;
        while head < topo.len() {
            let v = topo[head] as usize;
            head += 1;
            for &w in &succ_idx[succ_off[v] as usize..succ_off[v + 1] as usize] {
                indeg[w as usize] -= 1;
                if indeg[w as usize] == 0 {
                    topo.push(w);
                }
            }
        }
        debug_assert_eq!(topo.len(), n, "expanded graph must remain acyclic");
        let mut topo_pos = vec![0u32; n];
        for (pos, &v) in topo.iter().enumerate() {
            topo_pos[v as usize] = pos as u32;
        }

        // Longest chain in nodes: path-search state bound.
        let mut chain = vec![1usize; n];
        let mut max_chain = 1;
        for &v in &topo {
            let v = v as usize;
            for &p in &pred_idx[pred_off[v] as usize..pred_off[v + 1] as usize] {
                chain[v] = chain[v].max(chain[p as usize] + 1);
            }
            max_chain = max_chain.max(chain[v]);
        }

        ExpandedGraph {
            kinds,
            weights,
            succ_off,
            succ_idx,
            pred_off,
            pred_idx,
            task_node,
            comm_node,
            topo,
            topo_pos,
            max_chain,
        }
    }

    /// Number of expanded nodes.
    pub(crate) fn len(&self) -> usize {
        self.kinds.len()
    }

    /// What node `v` represents.
    pub(crate) fn kind(&self, v: usize) -> ExpKind {
        self.kinds[v]
    }

    /// Real execution time or estimated communication cost of node `v`.
    pub(crate) fn weight(&self, v: usize) -> Time {
        self.weights[v]
    }

    /// Successor node indices of `v`.
    #[inline]
    pub(crate) fn succ(&self, v: usize) -> &[u32] {
        &self.succ_idx[self.succ_off[v] as usize..self.succ_off[v + 1] as usize]
    }

    /// Predecessor node indices of `v`.
    #[inline]
    pub(crate) fn pred(&self, v: usize) -> &[u32] {
        &self.pred_idx[self.pred_off[v] as usize..self.pred_off[v + 1] as usize]
    }

    /// Expanded node index of subtask `id`.
    pub(crate) fn task_node(&self, id: SubtaskId) -> usize {
        self.task_node[id.index()]
    }

    /// Expanded node index of the communication subtask for `id`, if the
    /// message was materialized.
    pub(crate) fn comm_node(&self, id: EdgeId) -> Option<usize> {
        self.comm_node[id.index()]
    }

    /// Node indices in topological order.
    pub(crate) fn topo(&self) -> &[u32] {
        &self.topo
    }

    /// Position of node `v` in the topological order.
    #[inline]
    pub(crate) fn topo_pos(&self, v: usize) -> u32 {
        self.topo_pos[v]
    }

    /// Upper bound on path length in nodes.
    pub(crate) fn max_chain(&self) -> usize {
        self.max_chain
    }

    /// Returns `true` when `other` has the same *structure*: the same nodes
    /// (kinds, in the same order) and the same successor arcs. Weights are
    /// deliberately excluded — incremental redistribution compares virtual
    /// times per node instead, so a pure WCET delta keeps the structure
    /// equal and stays on the incremental path.
    ///
    /// Everything else in the representation (predecessor CSR, node maps,
    /// topological order, longest chain) is derived deterministically from
    /// kinds + successors by [`build`](Self::build), so comparing these two
    /// is exhaustive.
    pub(crate) fn same_structure(&self, other: &ExpandedGraph) -> bool {
        self.kinds == other.kinds
            && self.succ_off == other.succ_off
            && self.succ_idx == other.succ_idx
    }
}

#[cfg(test)]
mod tests {
    use taskgraph::Subtask;

    use super::*;

    fn chain_graph() -> TaskGraph {
        let mut b = TaskGraph::builder();
        let a = b.add_subtask(Subtask::new(Time::new(10)).released_at(Time::ZERO));
        let c = b.add_subtask(Subtask::new(Time::new(20)));
        let z = b.add_subtask(Subtask::new(Time::new(30)).due_at(Time::new(500)));
        b.add_edge(a, c, 15).unwrap();
        b.add_edge(c, z, 25).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn ccne_keeps_messages_transparent() {
        let g = chain_graph();
        let p = Platform::paper(4).unwrap();
        let exp = ExpandedGraph::build(&g, &CommEstimate::Ccne, &p);
        assert_eq!(exp.len(), 3);
        assert!(g.edge_ids().all(|e| exp.comm_node(e).is_none()));
        assert_eq!(exp.max_chain(), 3);
        // Direct arcs a -> c -> z.
        let a = exp.task_node(SubtaskId::new(0));
        let c = exp.task_node(SubtaskId::new(1));
        assert_eq!(exp.succ(a), &[c as u32]);
    }

    #[test]
    fn ccaa_materializes_comm_subtasks() {
        let g = chain_graph();
        let p = Platform::paper(4).unwrap();
        let exp = ExpandedGraph::build(&g, &CommEstimate::Ccaa, &p);
        assert_eq!(exp.len(), 5);
        assert_eq!(exp.max_chain(), 5);
        let e0 = g.edge_ids().next().unwrap();
        let chi = exp.comm_node(e0).expect("materialized");
        assert_eq!(exp.weight(chi), Time::new(15));
        assert_eq!(exp.kind(chi), ExpKind::Comm(e0));
        // a -> chi -> c
        let a = exp.task_node(SubtaskId::new(0));
        let c = exp.task_node(SubtaskId::new(1));
        assert_eq!(exp.succ(a), &[chi as u32]);
        assert_eq!(exp.pred(c), &[chi as u32]);
        // Topological order covers all nodes exactly once, and `topo_pos`
        // is its inverse.
        let mut seen = vec![false; exp.len()];
        for (pos, &v) in exp.topo().iter().enumerate() {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
            assert_eq!(exp.topo_pos(v as usize), pos as u32);
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn weights_mirror_wcet_for_tasks() {
        let g = chain_graph();
        let p = Platform::paper(2).unwrap();
        let exp = ExpandedGraph::build(&g, &CommEstimate::Ccne, &p);
        for id in g.subtask_ids() {
            assert_eq!(exp.weight(exp.task_node(id)), g.subtask(id).wcet());
        }
    }

    #[test]
    fn csr_adjacency_matches_arc_insertion_order() {
        // Diamond with an extra skip edge: multi-entry successor lists must
        // preserve the order the arcs were materialized in.
        let mut b = TaskGraph::builder();
        let a = b.add_subtask(Subtask::new(Time::new(1)).released_at(Time::ZERO));
        let x = b.add_subtask(Subtask::new(Time::new(1)));
        let y = b.add_subtask(Subtask::new(Time::new(1)));
        let d = b.add_subtask(Subtask::new(Time::new(1)).due_at(Time::new(100)));
        b.add_edge(a, x, 1).unwrap();
        b.add_edge(a, y, 1).unwrap();
        b.add_edge(a, d, 1).unwrap();
        b.add_edge(x, d, 1).unwrap();
        b.add_edge(y, d, 1).unwrap();
        let g = b.build().unwrap();
        let p = Platform::paper(2).unwrap();
        let exp = ExpandedGraph::build(&g, &CommEstimate::Ccne, &p);
        let node = |i: u32| exp.task_node(SubtaskId::new(i)) as u32;
        assert_eq!(exp.succ(node(0) as usize), &[node(1), node(2), node(3)]);
        assert_eq!(exp.pred(node(3) as usize), &[node(0), node(1), node(2)]);
        assert_eq!(exp.succ(node(3) as usize), &[] as &[u32]);
        assert_eq!(exp.pred(node(0) as usize), &[] as &[u32]);
    }
}
