//! Error type for deadline distribution.

use std::error::Error;
use std::fmt;

/// Error produced by [`Slicer::distribute`].
///
/// [`Slicer::distribute`]: crate::Slicer::distribute
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SliceError {
    /// The slicing loop could not find an anchored critical path although
    /// unassigned subtasks remain. Validated task graphs always admit one,
    /// so this indicates an internal bug rather than a property of the
    /// input.
    NoAnchoredPath,
}

impl fmt::Display for SliceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SliceError::NoAnchoredPath => {
                write!(f, "no anchored critical path found for remaining subtasks")
            }
        }
    }
}

impl Error for SliceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_error_impl() {
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<SliceError>();
        assert!(SliceError::NoAnchoredPath
            .to_string()
            .contains("critical path"));
    }
}
