//! Critical-path search (Step 3 of the basic algorithm, Figure 1).
//!
//! In each iteration the algorithm must find, among all *anchored* paths of
//! not-yet-assigned nodes, the one minimizing the metric's laxity ratio R. A
//! path is anchored when it starts at a node with a known release time and
//! ends at a node with a known (end-to-end) deadline; interior nodes must be
//! unanchored so that slices never contradict constraints imposed by
//! previously-assigned neighbours.
//!
//! Because R is a ratio, it does not decompose over edges; instead we run a
//! dynamic program over states `(node, path length)` tracking the maximum
//! and minimum total virtual execution time of any admissible path reaching
//! the node with that length. For a fixed window `D` and length `n`, R is
//! monotone in the total weight, so evaluating both extremes at every
//! deadline-anchored endpoint finds the exact minimum over all admissible
//! paths. State space is `O(V · L)` where `L` is the longest chain, keeping
//! each iteration cheap even for large graphs.

use taskgraph::Time;

use crate::expanded::ExpandedGraph;
use crate::ShareRule;

/// A critical path chosen by the search.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CriticalPath {
    /// Expanded-graph node indices from start to end.
    pub nodes: Vec<usize>,
    /// The metric score R of the path (lower = more critical).
    pub score: f64,
    /// The release anchor of the start node.
    pub window_start: Time,
    /// The deadline anchor of the end node.
    pub window_end: Time,
}

/// Scratch buffers reused across iterations of the slicing loop.
#[derive(Debug)]
pub(crate) struct PathSearch {
    cols: usize,
    wmax: Vec<f64>,
    wmin: Vec<f64>,
    pmax: Vec<u32>,
    pmin: Vec<u32>,
}

const NO_PARENT: u32 = u32::MAX;

impl PathSearch {
    /// Creates scratch space for a graph of `nodes` nodes and longest chain
    /// `max_chain`.
    pub(crate) fn new(nodes: usize, max_chain: usize) -> Self {
        let cols = max_chain + 1;
        PathSearch {
            cols,
            wmax: vec![f64::NEG_INFINITY; nodes * cols],
            wmin: vec![f64::INFINITY; nodes * cols],
            pmax: vec![NO_PARENT; nodes * cols],
            pmin: vec![NO_PARENT; nodes * cols],
        }
    }

    /// Finds the admissible path minimizing `rule`'s score, or `None` if no
    /// anchored path exists (which the slicing loop treats as an internal
    /// invariant violation).
    ///
    /// `vweights` are per-node virtual execution times; `assigned` marks
    /// nodes already sliced; `rel`/`dl` are the accumulated release/deadline
    /// anchors.
    pub(crate) fn find_critical_path(
        &mut self,
        exp: &ExpandedGraph,
        vweights: &[f64],
        assigned: &[bool],
        rel: &[Option<Time>],
        dl: &[Option<Time>],
        rule: ShareRule,
    ) -> Option<CriticalPath> {
        let n = exp.len();
        let cols = self.cols;
        let mut best: Option<CriticalPath> = None;

        for s in 0..n {
            if assigned[s] || rel[s].is_none() {
                continue;
            }
            let start_release = rel[s].expect("checked above");

            // Reset only the states we may touch: all of them (cheap fill).
            self.wmax.fill(f64::NEG_INFINITY);
            self.wmin.fill(f64::INFINITY);
            self.pmax.fill(NO_PARENT);
            self.pmin.fill(NO_PARENT);
            self.wmax[s * cols + 1] = vweights[s];
            self.wmin[s * cols + 1] = vweights[s];

            for &u in exp.topo() {
                if assigned[u] {
                    continue;
                }
                // The start may extend only if it is not deadline-anchored;
                // interior nodes hold states only when unanchored, so they
                // may always extend.
                let extendable = if u == s {
                    dl[s].is_none()
                } else {
                    rel[u].is_none() && dl[u].is_none()
                };
                if !extendable {
                    continue;
                }
                for k in 1..cols {
                    let idx = u * cols + k;
                    let wmax_u = self.wmax[idx];
                    let wmin_u = self.wmin[idx];
                    if wmax_u == f64::NEG_INFINITY && wmin_u == f64::INFINITY {
                        continue;
                    }
                    if k + 1 >= cols {
                        // Paths cannot exceed the longest chain.
                        continue;
                    }
                    for &z in exp.succ(u) {
                        // Release-anchored nodes can only *start* paths: a
                        // slice entering one from elsewhere could start
                        // before the anchor and violate an already-assigned
                        // predecessor's deadline.
                        if assigned[z] || rel[z].is_some() {
                            continue;
                        }
                        let zidx = z * cols + k + 1;
                        let cand_max = wmax_u + vweights[z];
                        if cand_max > self.wmax[zidx] {
                            self.wmax[zidx] = cand_max;
                            self.pmax[zidx] = u as u32;
                        }
                        let cand_min = wmin_u + vweights[z];
                        if cand_min < self.wmin[zidx] {
                            self.wmin[zidx] = cand_min;
                            self.pmin[zidx] = u as u32;
                        }
                    }
                }
            }

            // Evaluate every deadline-anchored endpoint.
            for t in 0..n {
                if assigned[t] || dl[t].is_none() {
                    continue;
                }
                let window_end = dl[t].expect("checked above");
                let window = window_end - start_release;
                for k in 1..cols {
                    let idx = t * cols + k;
                    for (total, use_max) in [(self.wmax[idx], true), (self.wmin[idx], false)] {
                        if !total.is_finite() {
                            continue;
                        }
                        let score = rule.score(window, total, k);
                        if best.as_ref().is_none_or(|b| score < b.score) {
                            let nodes = self.reconstruct(t, k, use_max);
                            best = Some(CriticalPath {
                                nodes,
                                score,
                                window_start: start_release,
                                window_end,
                            });
                        }
                    }
                }
            }
        }

        best
    }

    fn reconstruct(&self, end: usize, len: usize, use_max: bool) -> Vec<usize> {
        let parents = if use_max { &self.pmax } else { &self.pmin };
        let mut nodes = Vec::with_capacity(len);
        let mut v = end;
        let mut k = len;
        loop {
            nodes.push(v);
            if k == 1 {
                break;
            }
            let p = parents[v * self.cols + k];
            debug_assert_ne!(p, NO_PARENT, "state must have a parent");
            v = p as usize;
            k -= 1;
        }
        nodes.reverse();
        nodes
    }
}

#[cfg(test)]
mod tests {
    use platform::Platform;
    use taskgraph::{Subtask, SubtaskId, TaskGraph};

    use super::*;
    use crate::CommEstimate;

    /// Diamond a -> {b, c} -> d with distinct weights.
    fn diamond(wb: i64, wc: i64) -> (TaskGraph, ExpandedGraph) {
        let mut b = TaskGraph::builder();
        let a = b.add_subtask(Subtask::new(Time::new(10)).released_at(Time::ZERO));
        let x = b.add_subtask(Subtask::new(Time::new(wb)));
        let y = b.add_subtask(Subtask::new(Time::new(wc)));
        let d = b.add_subtask(Subtask::new(Time::new(10)).due_at(Time::new(200)));
        b.add_edge(a, x, 1).unwrap();
        b.add_edge(a, y, 1).unwrap();
        b.add_edge(x, d, 1).unwrap();
        b.add_edge(y, d, 1).unwrap();
        let g = b.build().unwrap();
        let p = Platform::paper(2).unwrap();
        let exp = ExpandedGraph::build(&g, &CommEstimate::Ccne, &p);
        (g, exp)
    }

    fn anchors(
        g: &TaskGraph,
        exp: &ExpandedGraph,
    ) -> (Vec<bool>, Vec<Option<Time>>, Vec<Option<Time>>) {
        let n = exp.len();
        let mut rel = vec![None; n];
        let mut dl = vec![None; n];
        for id in g.subtask_ids() {
            rel[exp.task_node(id)] = g.subtask(id).release();
            dl[exp.task_node(id)] = g.subtask(id).deadline();
        }
        (vec![false; n], rel, dl)
    }

    #[test]
    fn picks_heavier_branch_under_equal_share() {
        let (g, exp) = diamond(60, 20);
        let (assigned, rel, dl) = anchors(&g, &exp);
        let w: Vec<f64> = (0..exp.len()).map(|v| exp.weight(v).as_f64()).collect();
        let mut search = PathSearch::new(exp.len(), exp.max_chain());
        let cp = search
            .find_critical_path(&exp, &w, &assigned, &rel, &dl, ShareRule::EqualShare)
            .expect("path exists");
        // Heavier branch (through x, weight 60) has less slack per node:
        // (200 - 80)/3 = 40 < (200 - 40)/3 ≈ 53.3.
        let heavy = exp.task_node(SubtaskId::new(1));
        assert!(
            cp.nodes.contains(&heavy),
            "expected heavy branch in {:?}",
            cp.nodes
        );
        assert_eq!(cp.nodes.len(), 3);
        assert!((cp.score - 40.0).abs() < 1e-9);
        assert_eq!(cp.window_start, Time::ZERO);
        assert_eq!(cp.window_end, Time::new(200));
    }

    #[test]
    fn proportional_rule_prefers_heavy_paths_too() {
        let (g, exp) = diamond(60, 20);
        let (assigned, rel, dl) = anchors(&g, &exp);
        let w: Vec<f64> = (0..exp.len()).map(|v| exp.weight(v).as_f64()).collect();
        let mut search = PathSearch::new(exp.len(), exp.max_chain());
        let cp = search
            .find_critical_path(&exp, &w, &assigned, &rel, &dl, ShareRule::Proportional)
            .expect("path exists");
        // R = (200-80)/80 = 1.5 on the heavy path, (200-40)/40 = 4 on light.
        assert!((cp.score - 1.5).abs() < 1e-9);
    }

    #[test]
    fn respects_assigned_and_anchored_nodes() {
        let (g, exp) = diamond(60, 20);
        let (mut assigned, mut rel, mut dl) = anchors(&g, &exp);
        let heavy = exp.task_node(SubtaskId::new(1));
        // Pretend the heavy branch was already sliced with window [10, 150].
        assigned[heavy] = true;
        let a = exp.task_node(SubtaskId::new(0));
        let d = exp.task_node(SubtaskId::new(3));
        dl[a] = Some(Time::new(10));
        rel[d] = Some(Time::new(150));
        let w: Vec<f64> = (0..exp.len()).map(|v| exp.weight(v).as_f64()).collect();
        let mut search = PathSearch::new(exp.len(), exp.max_chain());
        let cp = search
            .find_critical_path(&exp, &w, &assigned, &rel, &dl, ShareRule::EqualShare)
            .expect("path exists");
        assert!(!cp.nodes.contains(&heavy));
        // `a` is now deadline-anchored: it can only be a 1-node path; `d` is
        // release-anchored: only a start. The light branch node is
        // unanchored, so no admissible path contains it yet — the best must
        // be a single-node path (`a` with window [0,10] scoring (10-10)/1=0,
        // or `d` with window [150,200] scoring 40).
        assert_eq!(cp.nodes.len(), 1);
        assert_eq!(cp.nodes[0], a);
        assert!((cp.score - 0.0).abs() < 1e-9);
    }

    #[test]
    fn single_node_graph_is_its_own_path() {
        let mut b = TaskGraph::builder();
        b.add_subtask(
            Subtask::new(Time::new(5))
                .released_at(Time::new(3))
                .due_at(Time::new(30)),
        );
        let g = b.build().unwrap();
        let p = Platform::paper(2).unwrap();
        let exp = ExpandedGraph::build(&g, &CommEstimate::Ccne, &p);
        let (assigned, rel, dl) = anchors(&g, &exp);
        let w = vec![5.0];
        let mut search = PathSearch::new(exp.len(), exp.max_chain());
        let cp = search
            .find_critical_path(&exp, &w, &assigned, &rel, &dl, ShareRule::EqualShare)
            .unwrap();
        assert_eq!(cp.nodes, vec![0]);
        assert!((cp.score - 22.0).abs() < 1e-9); // (27 - 5)/1
        assert_eq!(cp.window_start, Time::new(3));
    }

    #[test]
    fn no_candidates_returns_none() {
        let (g, exp) = diamond(10, 10);
        let (mut assigned, rel, dl) = anchors(&g, &exp);
        for a in assigned.iter_mut() {
            *a = true;
        }
        let w: Vec<f64> = vec![1.0; exp.len()];
        let mut search = PathSearch::new(exp.len(), exp.max_chain());
        assert!(search
            .find_critical_path(&exp, &w, &assigned, &rel, &dl, ShareRule::EqualShare)
            .is_none());
    }
}
