//! Critical-path search (Step 3 of the basic algorithm, Figure 1).
//!
//! In each iteration the algorithm must find, among all *anchored* paths of
//! not-yet-assigned nodes, the one minimizing the metric's laxity ratio R. A
//! path is anchored when it starts at a node with a known release time and
//! ends at a node with a known (end-to-end) deadline; interior nodes must be
//! unanchored so that slices never contradict constraints imposed by
//! previously-assigned neighbours.
//!
//! Because R is a ratio, it does not decompose over edges; instead we run a
//! dynamic program over states `(node, path length)` tracking the maximum
//! and minimum total virtual execution time of any admissible path reaching
//! the node with that length. For a fixed window `D` and length `n`, R is
//! monotone in the total weight, so evaluating both extremes at every
//! deadline-anchored endpoint finds the exact minimum over all admissible
//! paths.
//!
//! The state space is `O(V · L)` (`L` = longest chain), but the search never
//! sweeps it: state slots carry a generation stamp (`epoch`), so starting a
//! new DP costs one counter increment instead of four `O(V · L)` array
//! fills, and each start only ever touches slots its paths actually reach.
//! Traversal is driven by a frontier of live topological positions — nodes
//! that hold at least one live state — popped in topological order, so a
//! start's DP visits exactly the admissible nodes reachable from it rather
//! than every node times every chain length. Relaxations happen in the same
//! order as a full topological sweep, which keeps results bit-identical to
//! the naive DP (asserted by the `reference` equivalence suite below).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use taskgraph::Time;

use crate::expanded::ExpandedGraph;
use crate::ShareRule;

/// A critical path chosen by the search.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CriticalPath {
    /// Expanded-graph node indices from start to end.
    pub nodes: Vec<usize>,
    /// The metric score R of the path (lower = more critical).
    pub score: f64,
    /// The release anchor of the start node.
    pub window_start: Time,
    /// The deadline anchor of the end node.
    pub window_end: Time,
}

const NO_PARENT: u32 = u32::MAX;

/// Marks node `v` in the optional dependency bitset (one bit per expanded
/// node). A no-op when no recording is requested, so the untraced hot path
/// pays one predictable branch.
#[inline]
fn mark(dep: &mut Option<&mut Vec<u64>>, v: usize) {
    if let Some(bits) = dep.as_deref_mut() {
        bits[v >> 6] |= 1u64 << (v & 63);
    }
}

/// One DP state slot: extremes of total virtual time over admissible paths
/// reaching `(node, length)`, their parent choices, and the generation that
/// last wrote the slot. Interleaved so one cache line serves the whole
/// relax-and-compare sequence.
#[derive(Debug, Clone, Copy)]
struct State {
    wmax: f64,
    wmin: f64,
    pmax: u32,
    pmin: u32,
    stamp: u32,
}

const STALE: State = State {
    wmax: f64::NEG_INFINITY,
    wmin: f64::INFINITY,
    pmax: NO_PARENT,
    pmin: NO_PARENT,
    stamp: 0,
};

/// Scratch buffers reused across iterations of the slicing loop.
#[derive(Debug, Clone)]
pub(crate) struct PathSearch {
    cols: usize,
    /// Current generation; a state slot or node marker is live iff its
    /// stamp equals this.
    epoch: u32,
    /// `(node, length)` DP slots, row-major by node.
    states: Vec<State>,
    /// Per-node liveness stamp: the node holds ≥ 1 live state.
    node_stamp: Vec<u32>,
    /// Live length range per node (valid when `node_stamp` matches).
    kmin: Vec<u32>,
    kmax: Vec<u32>,
    /// Topological positions of live, not-yet-processed nodes.
    frontier: BinaryHeap<Reverse<u32>>,
    /// Per-call node classification (reused allocations).
    can_enter: Vec<bool>,
    endpoints: Vec<u32>,
}

impl PathSearch {
    /// Creates scratch space for a graph of `nodes` nodes and longest chain
    /// `max_chain`.
    pub(crate) fn new(nodes: usize, max_chain: usize) -> Self {
        let cols = max_chain + 1;
        PathSearch {
            cols,
            epoch: 0,
            states: vec![STALE; nodes * cols],
            node_stamp: vec![0; nodes],
            kmin: vec![0; nodes],
            kmax: vec![0; nodes],
            frontier: BinaryHeap::new(),
            can_enter: Vec::with_capacity(nodes),
            endpoints: Vec::with_capacity(nodes),
        }
    }

    /// Starts a new generation; on (absurdly unlikely) wrap-around, resets
    /// every stamp so stale slots cannot alias the new generation.
    fn next_epoch(&mut self) -> u32 {
        if self.epoch == u32::MAX {
            for st in &mut self.states {
                st.stamp = 0;
            }
            for s in &mut self.node_stamp {
                *s = 0;
            }
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
        self.epoch
    }

    /// Classifies nodes for one slicing iteration, filling the reusable
    /// `can_enter`/`endpoints` buffers: paths may *enter* a node only when
    /// it is unassigned and not release-anchored (a slice entering an
    /// anchored node from elsewhere could start before the anchor and
    /// violate an already-assigned predecessor's deadline), and may *end*
    /// at any unassigned deadline-anchored node.
    ///
    /// Returns `false` when no endpoint exists (no anchored path can exist
    /// either, so per-start searches are pointless).
    pub(crate) fn classify(
        &mut self,
        n: usize,
        assigned: &[bool],
        rel: &[Option<Time>],
        dl: &[Option<Time>],
    ) -> bool {
        self.can_enter.clear();
        self.can_enter
            .extend((0..n).map(|v| !assigned[v] && rel[v].is_none()));
        self.endpoints.clear();
        self.endpoints
            .extend((0..n as u32).filter(|&t| !assigned[t as usize] && dl[t as usize].is_some()));
        !self.endpoints.is_empty()
    }

    /// Finds the admissible path minimizing `rule`'s score, or `None` if no
    /// anchored path exists (which the slicing loop treats as an internal
    /// invariant violation).
    ///
    /// `vweights` are per-node virtual execution times; `assigned` marks
    /// nodes already sliced; `rel`/`dl` are the accumulated release/deadline
    /// anchors.
    ///
    /// Decomposed into one [`search_from`](Self::search_from) per
    /// release-anchored start, composed with a strict `<` over ascending
    /// starts — exactly the evaluation order of the original monolithic
    /// sweep, so the winner (the first candidate attaining the global
    /// minimum) is bit-identical. The per-start form is what incremental
    /// redistribution replays, skipping starts whose recorded read set is
    /// untouched by a delta.
    pub(crate) fn find_critical_path(
        &mut self,
        exp: &ExpandedGraph,
        vweights: &[f64],
        assigned: &[bool],
        rel: &[Option<Time>],
        dl: &[Option<Time>],
        rule: ShareRule,
    ) -> Option<CriticalPath> {
        let n = exp.len();
        if !self.classify(n, assigned, rel, dl) {
            return None;
        }
        let mut best: Option<CriticalPath> = None;
        for s in 0..n {
            if assigned[s] || rel[s].is_none() {
                continue;
            }
            let start_release = rel[s].expect("checked above");
            if let Some(cand) = self.search_from(exp, vweights, dl, s, start_release, rule, None) {
                if best.as_ref().is_none_or(|b| cand.score < b.score) {
                    best = Some(cand);
                }
            }
        }
        best
    }

    /// Runs the DP from one release-anchored start `s` and returns the best
    /// candidate path it can reach, or `None` if no endpoint is reachable.
    ///
    /// [`classify`](Self::classify) must have been called for the current
    /// `assigned`/`rel`/`dl` state first. Within a start, candidates are
    /// evaluated in a fixed order with a strict `<`, so the local winner is
    /// the first candidate attaining the local minimum — composing local
    /// winners across ascending starts with the same strict `<` reproduces
    /// the global sweep exactly.
    ///
    /// When `dep` is `Some`, every node whose *mutable per-iteration state*
    /// the search reads (the start, every popped node, every examined
    /// successor) is marked in the bitset. A cached result from this start
    /// stays valid as long as none of those nodes' state changed: unreached
    /// nodes beyond the recorded boundary cannot influence the search
    /// without some boundary node's `can_enter`/anchor state changing
    /// first, and that boundary node is in the set.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn search_from(
        &mut self,
        exp: &ExpandedGraph,
        vweights: &[f64],
        dl: &[Option<Time>],
        s: usize,
        start_release: Time,
        rule: ShareRule,
        mut dep: Option<&mut Vec<u64>>,
    ) -> Option<CriticalPath> {
        let cols = self.cols;
        let epoch = self.next_epoch();
        let mut best: Option<CriticalPath> = None;
        mark(&mut dep, s);

        // Seed the single-node path (s, length 1).
        self.states[s * cols + 1] = State {
            wmax: vweights[s],
            wmin: vweights[s],
            pmax: NO_PARENT,
            pmin: NO_PARENT,
            stamp: epoch,
        };
        self.node_stamp[s] = epoch;
        self.kmin[s] = 1;
        self.kmax[s] = 1;
        debug_assert!(self.frontier.is_empty());
        self.frontier.push(Reverse(exp.topo_pos(s)));

        // Process live nodes in topological order. Every node on the
        // frontier already satisfies the interior admissibility rules
        // (it is the start, or it was entered through `can_enter`), so
        // it may extend iff it is not deadline-anchored.
        while let Some(Reverse(pos)) = self.frontier.pop() {
            let u = exp.topo()[pos as usize] as usize;
            mark(&mut dep, u);
            if dl[u].is_some() {
                continue;
            }
            let (lo, hi) = (self.kmin[u], self.kmax[u]);
            for k in lo..=hi {
                let idx = u * cols + k as usize;
                let st = self.states[idx];
                if st.stamp != epoch {
                    continue;
                }
                if k as usize + 1 >= cols {
                    // Paths cannot exceed the longest chain.
                    continue;
                }
                for &z in exp.succ(u) {
                    let z = z as usize;
                    mark(&mut dep, z);
                    if !self.can_enter[z] {
                        continue;
                    }
                    let zidx = z * cols + k as usize + 1;
                    let zst = &mut self.states[zidx];
                    if zst.stamp != epoch {
                        *zst = State {
                            stamp: epoch,
                            ..STALE
                        };
                    }
                    let cand_max = st.wmax + vweights[z];
                    if cand_max > zst.wmax {
                        zst.wmax = cand_max;
                        zst.pmax = u as u32;
                    }
                    let cand_min = st.wmin + vweights[z];
                    if cand_min < zst.wmin {
                        zst.wmin = cand_min;
                        zst.pmin = u as u32;
                    }
                    if self.node_stamp[z] != epoch {
                        self.node_stamp[z] = epoch;
                        self.kmin[z] = k + 1;
                        self.kmax[z] = k + 1;
                        // First live state: z joins the frontier. Arcs
                        // only point forward in topological order, so z
                        // has not been popped yet.
                        self.frontier.push(Reverse(exp.topo_pos(z)));
                    } else {
                        self.kmin[z] = self.kmin[z].min(k + 1);
                        self.kmax[z] = self.kmax[z].max(k + 1);
                    }
                }
            }
        }

        // Evaluate every deadline-anchored endpoint this start reached.
        // Reached endpoints were popped above and are therefore already in
        // the dependency set; unreached ones only have their (stale) stamp
        // read, which is not part of the mutable slicing state.
        for i in 0..self.endpoints.len() {
            let t = self.endpoints[i] as usize;
            if self.node_stamp[t] != epoch {
                continue;
            }
            let window_end = dl[t].expect("endpoint is deadline-anchored");
            let window = window_end - start_release;
            for k in self.kmin[t]..=self.kmax[t] {
                let idx = t * cols + k as usize;
                let st = self.states[idx];
                if st.stamp != epoch {
                    continue;
                }
                for (total, use_max) in [(st.wmax, true), (st.wmin, false)] {
                    let score = rule.score(window, total, k as usize);
                    if best.as_ref().is_none_or(|b| score < b.score) {
                        let nodes = self.reconstruct(t, k as usize, use_max);
                        best = Some(CriticalPath {
                            nodes,
                            score,
                            window_start: start_release,
                            window_end,
                        });
                    }
                }
            }
        }

        best
    }

    fn reconstruct(&self, end: usize, len: usize, use_max: bool) -> Vec<usize> {
        let mut nodes = Vec::with_capacity(len);
        let mut v = end;
        let mut k = len;
        loop {
            nodes.push(v);
            if k == 1 {
                break;
            }
            let st = &self.states[v * self.cols + k];
            let p = if use_max { st.pmax } else { st.pmin };
            debug_assert_ne!(p, NO_PARENT, "state must have a parent");
            v = p as usize;
            k -= 1;
        }
        nodes.reverse();
        nodes
    }
}

/// The original quadratic-sweep DP, kept verbatim as the behavioural oracle
/// for the optimized search: the proptest suite below asserts both return
/// identical critical paths across random graphs and anchor patterns.
#[cfg(test)]
pub(crate) mod reference {
    use super::*;

    /// Naive search: four full `O(V · L)` array fills and a whole-graph
    /// topological sweep per start node.
    #[derive(Debug)]
    pub(crate) struct ReferencePathSearch {
        cols: usize,
        wmax: Vec<f64>,
        wmin: Vec<f64>,
        pmax: Vec<u32>,
        pmin: Vec<u32>,
    }

    impl ReferencePathSearch {
        pub(crate) fn new(nodes: usize, max_chain: usize) -> Self {
            let cols = max_chain + 1;
            ReferencePathSearch {
                cols,
                wmax: vec![f64::NEG_INFINITY; nodes * cols],
                wmin: vec![f64::INFINITY; nodes * cols],
                pmax: vec![NO_PARENT; nodes * cols],
                pmin: vec![NO_PARENT; nodes * cols],
            }
        }

        pub(crate) fn find_critical_path(
            &mut self,
            exp: &ExpandedGraph,
            vweights: &[f64],
            assigned: &[bool],
            rel: &[Option<Time>],
            dl: &[Option<Time>],
            rule: ShareRule,
        ) -> Option<CriticalPath> {
            let n = exp.len();
            let cols = self.cols;
            let mut best: Option<CriticalPath> = None;

            for s in 0..n {
                if assigned[s] || rel[s].is_none() {
                    continue;
                }
                let start_release = rel[s].expect("checked above");

                // Reset only the states we may touch: all of them.
                self.wmax.fill(f64::NEG_INFINITY);
                self.wmin.fill(f64::INFINITY);
                self.pmax.fill(NO_PARENT);
                self.pmin.fill(NO_PARENT);
                self.wmax[s * cols + 1] = vweights[s];
                self.wmin[s * cols + 1] = vweights[s];

                for &u in exp.topo() {
                    let u = u as usize;
                    if assigned[u] {
                        continue;
                    }
                    let extendable = if u == s {
                        dl[s].is_none()
                    } else {
                        rel[u].is_none() && dl[u].is_none()
                    };
                    if !extendable {
                        continue;
                    }
                    for k in 1..cols {
                        let idx = u * cols + k;
                        let wmax_u = self.wmax[idx];
                        let wmin_u = self.wmin[idx];
                        if wmax_u == f64::NEG_INFINITY && wmin_u == f64::INFINITY {
                            continue;
                        }
                        if k + 1 >= cols {
                            continue;
                        }
                        for &z in exp.succ(u) {
                            let z = z as usize;
                            if assigned[z] || rel[z].is_some() {
                                continue;
                            }
                            let zidx = z * cols + k + 1;
                            let cand_max = wmax_u + vweights[z];
                            if cand_max > self.wmax[zidx] {
                                self.wmax[zidx] = cand_max;
                                self.pmax[zidx] = u as u32;
                            }
                            let cand_min = wmin_u + vweights[z];
                            if cand_min < self.wmin[zidx] {
                                self.wmin[zidx] = cand_min;
                                self.pmin[zidx] = u as u32;
                            }
                        }
                    }
                }

                for t in 0..n {
                    if assigned[t] || dl[t].is_none() {
                        continue;
                    }
                    let window_end = dl[t].expect("checked above");
                    let window = window_end - start_release;
                    for k in 1..cols {
                        let idx = t * cols + k;
                        for (total, use_max) in [(self.wmax[idx], true), (self.wmin[idx], false)] {
                            if !total.is_finite() {
                                continue;
                            }
                            let score = rule.score(window, total, k);
                            if best.as_ref().is_none_or(|b| score < b.score) {
                                let nodes = self.reconstruct(t, k, use_max);
                                best = Some(CriticalPath {
                                    nodes,
                                    score,
                                    window_start: start_release,
                                    window_end,
                                });
                            }
                        }
                    }
                }
            }

            best
        }

        fn reconstruct(&self, end: usize, len: usize, use_max: bool) -> Vec<usize> {
            let parents = if use_max { &self.pmax } else { &self.pmin };
            let mut nodes = Vec::with_capacity(len);
            let mut v = end;
            let mut k = len;
            loop {
                nodes.push(v);
                if k == 1 {
                    break;
                }
                let p = parents[v * self.cols + k];
                debug_assert_ne!(p, NO_PARENT, "state must have a parent");
                v = p as usize;
                k -= 1;
            }
            nodes.reverse();
            nodes
        }
    }
}

#[cfg(test)]
mod equivalence {
    //! The optimized search against the [`reference`] oracle: identical
    //! critical paths (same score, same window, same node sequence) across
    //! random DAGs, random anchor/assignment patterns, both communication
    //! estimates and both share rules.

    use platform::Platform;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use taskgraph::{Subtask, TaskGraph, Time};

    use super::reference::ReferencePathSearch;
    use super::PathSearch;
    use crate::expanded::ExpandedGraph;
    use crate::{CommEstimate, ShareRule};

    /// A random DAG: edges only point from lower to higher node index, so
    /// acyclicity is structural. The edge set is drawn first so that input
    /// subtasks can be given the release and output subtasks the deadline
    /// the builder requires; interior nodes carry anchors at random, as
    /// generated workloads do.
    fn random_graph(rng: &mut StdRng, n: usize, density: f64) -> TaskGraph {
        let mut edges: Vec<(usize, usize, u64)> = Vec::new();
        let mut has_pred = vec![false; n];
        let mut has_succ = vec![false; n];
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen_bool(density) {
                    edges.push((i, j, rng.gen_range(1..=20)));
                    has_succ[i] = true;
                    has_pred[j] = true;
                }
            }
        }

        let mut b = TaskGraph::builder();
        let ids: Vec<_> = (0..n)
            .map(|v| {
                let mut s = Subtask::new(Time::new(rng.gen_range(1..=50)));
                if !has_pred[v] || rng.gen_bool(0.4) {
                    s = s.released_at(Time::new(rng.gen_range(0..=30)));
                }
                if !has_succ[v] || rng.gen_bool(0.4) {
                    s = s.due_at(Time::new(rng.gen_range(40..=400)));
                }
                b.add_subtask(s)
            })
            .collect();
        for (i, j, items) in edges {
            b.add_edge(ids[i], ids[j], items)
                .expect("forward edges cannot cycle or duplicate");
        }
        b.build()
            .expect("non-empty graph with anchored inputs/outputs")
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn optimized_search_matches_reference(
            seed in 0u64..u64::MAX,
            n in 1usize..=14,
            density in 0.0f64..0.7,
            ccaa in proptest::bool::ANY,
            proportional in proptest::bool::ANY,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let graph = random_graph(&mut rng, n, density);
            let platform = Platform::paper(2).expect("valid platform");
            let estimate = if ccaa { CommEstimate::Ccaa } else { CommEstimate::Ccne };
            let rule = if proportional {
                ShareRule::Proportional
            } else {
                ShareRule::EqualShare
            };
            let exp = ExpandedGraph::build(&graph, &estimate, &platform);
            let en = exp.len();

            // Random anchor/assignment pattern over the *expanded* nodes,
            // layered on top of the graph's own anchors — mirrors the
            // accumulated state of a mid-flight slicing loop.
            let mut assigned = vec![false; en];
            let mut rel: Vec<Option<Time>> = vec![None; en];
            let mut dl: Vec<Option<Time>> = vec![None; en];
            for id in graph.subtask_ids() {
                rel[exp.task_node(id)] = graph.subtask(id).release();
                dl[exp.task_node(id)] = graph.subtask(id).deadline();
            }
            for v in 0..en {
                if rng.gen_bool(0.2) {
                    assigned[v] = true;
                }
                if rng.gen_bool(0.25) {
                    rel[v] = Some(Time::new(rng.gen_range(0..=60)));
                }
                if rng.gen_bool(0.25) {
                    dl[v] = Some(Time::new(rng.gen_range(20..=500)));
                }
            }
            let vweights: Vec<f64> = (0..en).map(|_| rng.gen_range(0.5f64..50.0)).collect();

            let mut optimized = PathSearch::new(en, exp.max_chain());
            let mut naive = ReferencePathSearch::new(en, exp.max_chain());
            let fast = optimized.find_critical_path(&exp, &vweights, &assigned, &rel, &dl, rule);
            let slow = naive.find_critical_path(&exp, &vweights, &assigned, &rel, &dl, rule);
            prop_assert_eq!(&fast, &slow);

            // When a path exists, re-deriving its score from the returned
            // nodes must reproduce it: the path really scores what the DP
            // claims (an "equally-scoring path", independently of parents).
            if let Some(cp) = &fast {
                let total: f64 = cp.nodes.iter().map(|&v| vweights[v]).sum();
                let window = cp.window_end - cp.window_start;
                let rescored = rule.score(window, total, cp.nodes.len());
                prop_assert!(
                    (rescored - cp.score).abs() < 1e-9,
                    "path rescoring drifted: {} vs {}",
                    rescored,
                    cp.score
                );
            }

            // The scratch state must be reusable: a second run over the same
            // inputs sees only epoch-stamped slots, never stale data.
            let again = optimized.find_critical_path(&exp, &vweights, &assigned, &rel, &dl, rule);
            prop_assert_eq!(&again, &slow);
        }
    }
}

#[cfg(test)]
mod tests {
    use platform::Platform;
    use taskgraph::{Subtask, SubtaskId, TaskGraph};

    use super::*;
    use crate::CommEstimate;

    /// Diamond a -> {b, c} -> d with distinct weights.
    fn diamond(wb: i64, wc: i64) -> (TaskGraph, ExpandedGraph) {
        let mut b = TaskGraph::builder();
        let a = b.add_subtask(Subtask::new(Time::new(10)).released_at(Time::ZERO));
        let x = b.add_subtask(Subtask::new(Time::new(wb)));
        let y = b.add_subtask(Subtask::new(Time::new(wc)));
        let d = b.add_subtask(Subtask::new(Time::new(10)).due_at(Time::new(200)));
        b.add_edge(a, x, 1).unwrap();
        b.add_edge(a, y, 1).unwrap();
        b.add_edge(x, d, 1).unwrap();
        b.add_edge(y, d, 1).unwrap();
        let g = b.build().unwrap();
        let p = Platform::paper(2).unwrap();
        let exp = ExpandedGraph::build(&g, &CommEstimate::Ccne, &p);
        (g, exp)
    }

    fn anchors(
        g: &TaskGraph,
        exp: &ExpandedGraph,
    ) -> (Vec<bool>, Vec<Option<Time>>, Vec<Option<Time>>) {
        let n = exp.len();
        let mut rel = vec![None; n];
        let mut dl = vec![None; n];
        for id in g.subtask_ids() {
            rel[exp.task_node(id)] = g.subtask(id).release();
            dl[exp.task_node(id)] = g.subtask(id).deadline();
        }
        (vec![false; n], rel, dl)
    }

    #[test]
    fn picks_heavier_branch_under_equal_share() {
        let (g, exp) = diamond(60, 20);
        let (assigned, rel, dl) = anchors(&g, &exp);
        let w: Vec<f64> = (0..exp.len()).map(|v| exp.weight(v).as_f64()).collect();
        let mut search = PathSearch::new(exp.len(), exp.max_chain());
        let cp = search
            .find_critical_path(&exp, &w, &assigned, &rel, &dl, ShareRule::EqualShare)
            .expect("path exists");
        // Heavier branch (through x, weight 60) has less slack per node:
        // (200 - 80)/3 = 40 < (200 - 40)/3 ≈ 53.3.
        let heavy = exp.task_node(SubtaskId::new(1));
        assert!(
            cp.nodes.contains(&heavy),
            "expected heavy branch in {:?}",
            cp.nodes
        );
        assert_eq!(cp.nodes.len(), 3);
        assert!((cp.score - 40.0).abs() < 1e-9);
        assert_eq!(cp.window_start, Time::ZERO);
        assert_eq!(cp.window_end, Time::new(200));
    }

    #[test]
    fn proportional_rule_prefers_heavy_paths_too() {
        let (g, exp) = diamond(60, 20);
        let (assigned, rel, dl) = anchors(&g, &exp);
        let w: Vec<f64> = (0..exp.len()).map(|v| exp.weight(v).as_f64()).collect();
        let mut search = PathSearch::new(exp.len(), exp.max_chain());
        let cp = search
            .find_critical_path(&exp, &w, &assigned, &rel, &dl, ShareRule::Proportional)
            .expect("path exists");
        // R = (200-80)/80 = 1.5 on the heavy path, (200-40)/40 = 4 on light.
        assert!((cp.score - 1.5).abs() < 1e-9);
    }

    #[test]
    fn respects_assigned_and_anchored_nodes() {
        let (g, exp) = diamond(60, 20);
        let (mut assigned, mut rel, mut dl) = anchors(&g, &exp);
        let heavy = exp.task_node(SubtaskId::new(1));
        // Pretend the heavy branch was already sliced with window [10, 150].
        assigned[heavy] = true;
        let a = exp.task_node(SubtaskId::new(0));
        let d = exp.task_node(SubtaskId::new(3));
        dl[a] = Some(Time::new(10));
        rel[d] = Some(Time::new(150));
        let w: Vec<f64> = (0..exp.len()).map(|v| exp.weight(v).as_f64()).collect();
        let mut search = PathSearch::new(exp.len(), exp.max_chain());
        let cp = search
            .find_critical_path(&exp, &w, &assigned, &rel, &dl, ShareRule::EqualShare)
            .expect("path exists");
        assert!(!cp.nodes.contains(&heavy));
        // `a` is now deadline-anchored: it can only be a 1-node path; `d` is
        // release-anchored: only a start. The light branch node is
        // unanchored, so no admissible path contains it yet — the best must
        // be a single-node path (`a` with window [0,10] scoring (10-10)/1=0,
        // or `d` with window [150,200] scoring 40).
        assert_eq!(cp.nodes.len(), 1);
        assert_eq!(cp.nodes[0], a);
        assert!((cp.score - 0.0).abs() < 1e-9);
    }

    #[test]
    fn single_node_graph_is_its_own_path() {
        let mut b = TaskGraph::builder();
        b.add_subtask(
            Subtask::new(Time::new(5))
                .released_at(Time::new(3))
                .due_at(Time::new(30)),
        );
        let g = b.build().unwrap();
        let p = Platform::paper(2).unwrap();
        let exp = ExpandedGraph::build(&g, &CommEstimate::Ccne, &p);
        let (assigned, rel, dl) = anchors(&g, &exp);
        let w = vec![5.0];
        let mut search = PathSearch::new(exp.len(), exp.max_chain());
        let cp = search
            .find_critical_path(&exp, &w, &assigned, &rel, &dl, ShareRule::EqualShare)
            .unwrap();
        assert_eq!(cp.nodes, vec![0]);
        assert!((cp.score - 22.0).abs() < 1e-9); // (27 - 5)/1
        assert_eq!(cp.window_start, Time::new(3));
    }

    #[test]
    fn no_candidates_returns_none() {
        let (g, exp) = diamond(10, 10);
        let (mut assigned, rel, dl) = anchors(&g, &exp);
        for a in assigned.iter_mut() {
            *a = true;
        }
        let w: Vec<f64> = vec![1.0; exp.len()];
        let mut search = PathSearch::new(exp.len(), exp.max_chain());
        assert!(search
            .find_critical_path(&exp, &w, &assigned, &rel, &dl, ShareRule::EqualShare)
            .is_none());
    }

    #[test]
    fn scratch_state_is_reusable_across_searches() {
        // The same PathSearch must give identical answers when reused: the
        // epoch stamps must fully isolate consecutive searches.
        let (g, exp) = diamond(60, 20);
        let (assigned, rel, dl) = anchors(&g, &exp);
        let w: Vec<f64> = (0..exp.len()).map(|v| exp.weight(v).as_f64()).collect();
        let mut search = PathSearch::new(exp.len(), exp.max_chain());
        let first = search
            .find_critical_path(&exp, &w, &assigned, &rel, &dl, ShareRule::EqualShare)
            .unwrap();
        for _ in 0..3 {
            let again = search
                .find_critical_path(&exp, &w, &assigned, &rel, &dl, ShareRule::EqualShare)
                .unwrap();
            assert_eq!(first, again);
        }
    }
}
