//! Offline shim for the subset of `proptest` 1 used by this workspace.
//!
//! Implements random-sampling property testing: the [`proptest!`] macro,
//! [`strategy::Strategy`] with `prop_map`/`boxed`, range and tuple
//! strategies, [`prop_oneof!`] unions, `Just`, and `proptest::bool::ANY`.
//! Unlike upstream there is **no shrinking** — a failing case reports the
//! case index and message, and cases are generated from a fixed seed so a
//! failure reproduces exactly by re-running the test.

pub mod strategy {
    //! Sampling strategies.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The type of value this strategy yields.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Transforms every drawn value through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Erases the strategy type (needed to mix strategies in a union).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.sample(rng)))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.source.sample(rng))
        }
    }

    /// A type-erased strategy; see [`Strategy::boxed`].
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut StdRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice between strategies; built by [`crate::prop_oneof!`].
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Creates a union over `options`.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for core::ops::Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut StdRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut StdRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!(
        (A: 0, B: 1),
        (A: 0, B: 1, C: 2),
        (A: 0, B: 1, C: 2, D: 3),
        (A: 0, B: 1, C: 2, D: 3, E: 4),
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
    );
}

pub mod bool {
    //! Boolean strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngCore;

    /// The strategy type behind [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Yields `true` or `false` with equal probability.
    pub const ANY: Any = Any;
}

pub mod test_runner {
    //! Case generation and execution.

    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::fmt;

    /// Controls how many cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to draw per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases, ignoring the
        /// environment (use for suites whose case count must not drift).
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        /// 256 cases, overridable through the `PROPTEST_CASES`
        /// environment variable (mirroring upstream proptest, so CI can
        /// pin or scale suites without code edits).
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            ProptestConfig { cases }
        }
    }

    /// A failed property case (produced by `prop_assert!` and friends).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Runs `case` for each configured case with a deterministic per-case
    /// RNG, panicking (like `assert!`) on the first failure.
    ///
    /// # Panics
    ///
    /// Panics when a case returns an error, naming the failing case index.
    pub fn run(
        config: &ProptestConfig,
        mut case: impl FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    ) {
        for i in 0..config.cases {
            // Deterministic, well-spread seeds: failures reproduce exactly.
            let seed = 0x5EED_0000_0000_0000u64 ^ u64::from(i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut rng = StdRng::seed_from_u64(seed);
            if let Err(e) = case(&mut rng) {
                panic!("property failed at case {i}/{}: {e}", config.cases);
            }
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { ... }`
/// becomes a test that draws `cases` random inputs and checks the body.
/// Write `#[test]` on each function, as with upstream proptest.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::test_runner::run(&__config, |__rng| {
                $(let $arg = $crate::strategy::Strategy::sample(&($strategy), __rng);)+
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                __outcome
            });
        }
    )*};
}

/// Uniform choice between strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Like `assert!`, but reports a property failure instead of panicking
/// directly (valid only inside a [`proptest!`] body).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Like `assert_eq!`, for [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            __l,
            __r
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = u64> {
        (0u64..1_000).prop_map(|n| n * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(n in 5usize..10, f in 0.0f64..1.0) {
            prop_assert!((5..10).contains(&n));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn mapped_strategies_apply(n in evens()) {
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn unions_pick_every_arm(v in prop_oneof![Just(1u8), Just(2u8), 5u8..=9]) {
            prop_assert!(v == 1 || v == 2 || (5..=9).contains(&v));
        }

        #[test]
        fn tuples_and_bools(pair in (0i64..4, 0i64..4), b in crate::bool::ANY,) {
            prop_assert!(pair.0 < 4 && pair.1 < 4);
            prop_assert!(b as u8 <= 1);
        }
    }

    #[test]
    #[should_panic(expected = "property failed at case")]
    fn failures_panic_with_case_index() {
        crate::test_runner::run(&ProptestConfig::with_cases(3), |_rng| {
            Err(TestCaseError::fail("boom"))
        });
    }
}
