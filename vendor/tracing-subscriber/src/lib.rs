//! Offline shim for the subset of `tracing-subscriber` 0.3 used by this
//! workspace: a [`fmt()`] builder that writes human-readable, span-scoped
//! lines to stderr, filtered by an [`EnvFilter`] parsed from `RUST_LOG`
//! style directives (`debug`, `feast=debug,slicing=trace`, `off`).

use std::cell::RefCell;
use std::fmt::Write as _;
use std::io::Write as _;
use std::time::{Duration, Instant};

use tracing::{Event, Level, SpanData, Subscriber};

/// A `RUST_LOG`-style filter: an optional default level plus per-target
/// directives. Target matching is by module-path prefix; the most specific
/// (longest) matching directive wins.
#[derive(Debug, Clone, Default)]
pub struct EnvFilter {
    default: Option<Level>,
    directives: Vec<(String, Option<Level>)>,
}

impl EnvFilter {
    /// Parses a directive string such as `info` or `feast=debug,sched=trace`.
    /// Unparseable fragments are ignored (upstream warns and skips them too).
    pub fn new(directives: impl AsRef<str>) -> Self {
        let mut filter = EnvFilter::default();
        for part in directives.as_ref().split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match part.split_once('=') {
                Some((target, level)) => {
                    if let Some(level) = parse_level(level.trim()) {
                        filter.directives.push((target.trim().to_owned(), level));
                    }
                }
                None => {
                    if let Some(level) = parse_level(part) {
                        filter.default = level;
                    }
                }
            }
        }
        // Most specific first, so the first match wins.
        filter
            .directives
            .sort_by_key(|d| std::cmp::Reverse(d.0.len()));
        filter
    }

    /// Builds the filter from the `RUST_LOG` environment variable.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`std::env::VarError`] when `RUST_LOG` is
    /// unset or not unicode.
    pub fn try_from_default_env() -> Result<Self, std::env::VarError> {
        std::env::var("RUST_LOG").map(EnvFilter::new)
    }

    /// Builds the filter from `RUST_LOG`, defaulting to `error` when unset
    /// (upstream's behavior).
    pub fn from_default_env() -> Self {
        Self::try_from_default_env().unwrap_or_else(|_| EnvFilter::new("error"))
    }

    /// Would an event or span at `level` from `target` pass this filter?
    pub fn enabled(&self, level: Level, target: &str) -> bool {
        for (prefix, directive) in &self.directives {
            if target == prefix
                || target.starts_with(prefix) && {
                    let rest = &target[prefix.len()..];
                    rest.starts_with("::")
                }
            {
                return directive.is_some_and(|max| level <= max);
            }
        }
        self.default.is_some_and(|max| level <= max)
    }
}

/// `Some(Some(level))` syntax collapsed: `None` = unparseable,
/// `Some(None)` = explicitly off.
fn parse_level(text: &str) -> Option<Option<Level>> {
    if text.eq_ignore_ascii_case("off") {
        return Some(None);
    }
    text.parse::<Level>().ok().map(Some)
}

/// Starts building a stderr-formatting subscriber.
pub fn fmt() -> FmtBuilder {
    FmtBuilder {
        filter: EnvFilter::new("info"),
        show_target: true,
    }
}

/// Builder for the stderr formatter; see [`fmt()`].
#[derive(Debug)]
pub struct FmtBuilder {
    filter: EnvFilter,
    show_target: bool,
}

impl FmtBuilder {
    /// Filters output through `filter`.
    #[must_use]
    pub fn with_env_filter(mut self, filter: EnvFilter) -> Self {
        self.filter = filter;
        self
    }

    /// Caps verbosity at `level` for every target (replaces the filter).
    #[must_use]
    pub fn with_max_level(mut self, level: Level) -> Self {
        self.filter = EnvFilter {
            default: Some(level),
            directives: Vec::new(),
        };
        self
    }

    /// Shows or hides the module path on each line (default: shown).
    #[must_use]
    pub fn with_target(mut self, show: bool) -> Self {
        self.show_target = show;
        self
    }

    /// Installs the subscriber globally.
    ///
    /// # Errors
    ///
    /// Fails when a global subscriber is already installed.
    pub fn try_init(self) -> Result<(), tracing::subscriber::SetGlobalDefaultError> {
        tracing::subscriber::set_global_default(FmtSubscriber {
            filter: self.filter,
            show_target: self.show_target,
            started: Instant::now(),
        })
    }

    /// Installs the subscriber globally.
    ///
    /// # Panics
    ///
    /// Panics when a global subscriber is already installed.
    pub fn init(self) {
        self.try_init()
            .expect("global subscriber already installed");
    }
}

/// The subscriber built by [`fmt()`]: one line per event on stderr, prefixed
/// with elapsed time, level, the active span stack, and the target.
pub struct FmtSubscriber {
    filter: EnvFilter,
    show_target: bool,
    started: Instant,
}

thread_local! {
    /// Rendered labels of this thread's active spans, innermost last.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

impl FmtSubscriber {
    fn write_line(&self, level: Level, target: &str, body: &str) {
        let elapsed = self.started.elapsed();
        let mut line = String::with_capacity(body.len() + 64);
        let _ = write!(
            line,
            "{:>10.6}s {:>5} ",
            elapsed.as_secs_f64(),
            level.as_str()
        );
        SPAN_STACK.with(|stack| {
            for label in stack.borrow().iter() {
                let _ = write!(line, "{label}:");
            }
        });
        if self.show_target {
            let _ = write!(line, " {target}:");
        }
        let _ = write!(line, " {body}");
        line.push('\n');
        // Single write keeps concurrent threads' lines from interleaving.
        let _ = std::io::stderr().lock().write_all(line.as_bytes());
    }
}

fn render_fields(into: &mut String, fields: &tracing::Fields) {
    for (key, value) in fields {
        if !into.is_empty() {
            into.push(' ');
        }
        let _ = write!(into, "{key}={value}");
    }
}

impl Subscriber for FmtSubscriber {
    fn enabled(&self, level: Level, target: &str) -> bool {
        self.filter.enabled(level, target)
    }

    fn event(&self, event: &Event) {
        let mut body = String::new();
        if !event.message.is_empty() {
            body.push_str(&event.message);
        }
        render_fields(&mut body, &event.fields);
        self.write_line(event.level, event.target, &body);
    }

    fn enter_span(&self, span: &SpanData) {
        let mut label = String::from(span.name);
        if !span.fields.is_empty() {
            label.push('{');
            let mut rendered = String::new();
            render_fields(&mut rendered, &span.fields);
            label.push_str(&rendered);
            label.push('}');
        }
        SPAN_STACK.with(|stack| stack.borrow_mut().push(label));
    }

    fn exit_span(&self, span: &SpanData, elapsed: Option<Duration>) {
        if let Some(elapsed) = elapsed {
            self.write_line(
                span.level,
                span.target,
                &format!("close span={} span_us={}", span.name, elapsed.as_micros()),
            );
        }
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_level_sets_the_default() {
        let f = EnvFilter::new("debug");
        assert!(f.enabled(Level::Debug, "feast::runner"));
        assert!(f.enabled(Level::Info, "anything"));
        assert!(!f.enabled(Level::Trace, "anything"));
    }

    #[test]
    fn per_target_directives_override_default() {
        let f = EnvFilter::new("warn,feast=debug,slicing::algorithm=trace");
        assert!(f.enabled(Level::Debug, "feast"));
        assert!(f.enabled(Level::Debug, "feast::runner"));
        assert!(!f.enabled(Level::Debug, "feastlike")); // prefix, not path
        assert!(f.enabled(Level::Trace, "slicing::algorithm"));
        assert!(!f.enabled(Level::Trace, "slicing"));
        assert!(f.enabled(Level::Warn, "sched"));
        assert!(!f.enabled(Level::Info, "sched"));
    }

    #[test]
    fn longest_directive_wins() {
        let f = EnvFilter::new("feast=info,feast::telemetry=trace");
        assert!(f.enabled(Level::Trace, "feast::telemetry"));
        assert!(!f.enabled(Level::Trace, "feast::runner"));
    }

    #[test]
    fn off_silences() {
        let f = EnvFilter::new("info,sched=off");
        assert!(!f.enabled(Level::Error, "sched"));
        assert!(f.enabled(Level::Info, "feast"));
    }

    #[test]
    fn malformed_directives_are_skipped() {
        let f = EnvFilter::new("bogus_level,feast=debug,=,x=notalevel");
        assert!(f.enabled(Level::Debug, "feast"));
        assert!(!f.enabled(Level::Error, "other")); // no default installed
    }

    #[test]
    fn unset_env_defaults_to_error() {
        std::env::remove_var("RUST_LOG_SHIM_TEST");
        let f = EnvFilter::from_default_env(); // RUST_LOG may be unset in CI
                                               // Can't assert on RUST_LOG itself (environment-dependent); at least
                                               // the constructor must not panic and yield a usable filter.
        let _ = f.enabled(Level::Error, "feast");
    }
}
