//! Subscriber dispatch: one process-global subscriber plus an optional
//! thread-local override used by tests to capture output in isolation.

use std::cell::RefCell;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use crate::{Event, Level, SpanData, Subscriber};

static GLOBAL: OnceLock<Box<dyn Subscriber>> = OnceLock::new();

thread_local! {
    static LOCAL: RefCell<Vec<Arc<dyn Subscriber>>> = const { RefCell::new(Vec::new()) };
}

/// Error returned when a global subscriber was already installed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetGlobalDefaultError;

impl std::fmt::Display for SetGlobalDefaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("a global default subscriber has already been set")
    }
}

impl std::error::Error for SetGlobalDefaultError {}

/// Installs the process-wide subscriber. Fails if one is already set.
///
/// # Errors
///
/// Returns [`SetGlobalDefaultError`] when called a second time.
pub fn set_global_default(
    subscriber: impl Subscriber + 'static,
) -> Result<(), SetGlobalDefaultError> {
    GLOBAL
        .set(Box::new(subscriber))
        .map_err(|_| SetGlobalDefaultError)
}

/// Runs `f` with `subscriber` receiving this thread's output, restoring the
/// previous dispatch afterwards. Worker threads spawned inside `f` still
/// dispatch to the global subscriber.
pub fn with_default<T>(subscriber: impl Subscriber + 'static, f: impl FnOnce() -> T) -> T {
    struct PopGuard;
    impl Drop for PopGuard {
        fn drop(&mut self) {
            LOCAL.with(|stack| stack.borrow_mut().pop());
        }
    }
    LOCAL.with(|stack| stack.borrow_mut().push(Arc::new(subscriber)));
    let _guard = PopGuard;
    f()
}

/// Dispatches to the innermost thread-local subscriber, else the global one.
fn with_current<T>(f: impl FnOnce(&dyn Subscriber) -> T) -> Option<T> {
    let local = LOCAL.with(|stack| stack.borrow().last().cloned());
    match local {
        Some(subscriber) => Some(f(subscriber.as_ref())),
        None => GLOBAL.get().map(|subscriber| f(subscriber.as_ref())),
    }
}

/// Is any subscriber interested in this (level, target)? Gates every event
/// and span macro call site; with no subscriber installed this is a
/// thread-local read plus a `OnceLock` load.
pub fn enabled(level: Level, target: &str) -> bool {
    with_current(|s| s.enabled(level, target)).unwrap_or(false)
}

/// Forwards an event to the active subscriber.
pub fn event(event: &Event) {
    with_current(|s| s.event(event));
}

/// Forwards a span entry to the active subscriber.
pub fn enter_span(span: &SpanData) {
    with_current(|s| s.enter_span(span));
}

/// Forwards a span exit to the active subscriber.
pub fn exit_span(span: &SpanData, elapsed: Option<Duration>) {
    with_current(|s| s.exit_span(span, elapsed));
}
