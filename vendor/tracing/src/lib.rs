//! Offline shim for the subset of `tracing` 0.1 used by this workspace.
//!
//! Structured, leveled diagnostics: event macros ([`info!`], [`warn!`], …)
//! carrying typed key–value fields plus an optional formatted message, and
//! span macros ([`info_span!`], …) that scope work and notify the active
//! [`Subscriber`] on enter/exit. Dispatch goes to a thread-local subscriber
//! if one is installed (see [`subscriber::with_default`], used by tests) and
//! otherwise to the global one ([`subscriber::set_global_default`]).
//!
//! Differences from upstream: field values are captured eagerly into
//! [`FieldValue`] (no visitor API), there is no `#[instrument]` attribute
//! macro, and span durations are only measured when the `timing` cargo
//! feature is enabled — with it off, spans never read the clock.

use std::fmt;

pub mod subscriber;

use std::time::Duration;
#[cfg(feature = "timing")]
use std::time::Instant;

/// Severity of an event or span, ordered `Error < Warn < Info < Debug <
/// Trace` so that `event_level <= max_level` means "verbose enough".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Unrecoverable or must-see problems.
    Error,
    /// Suspicious conditions (e.g. deadline misses, violations).
    Warn,
    /// High-level progress.
    Info,
    /// Per-stage detail.
    Debug,
    /// Per-decision detail (e.g. individual dispatch choices).
    Trace,
}

impl Level {
    /// Upstream-style associated const.
    pub const ERROR: Level = Level::Error;
    /// Upstream-style associated const.
    pub const WARN: Level = Level::Warn;
    /// Upstream-style associated const.
    pub const INFO: Level = Level::Info;
    /// Upstream-style associated const.
    pub const DEBUG: Level = Level::Debug;
    /// Upstream-style associated const.
    pub const TRACE: Level = Level::Trace;

    /// The canonical uppercase name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            "trace" => Ok(Level::Trace),
            other => Err(format!("unknown level `{other}`")),
        }
    }
}

/// An eagerly captured field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String (also produced by `?value` / `%value` captures).
    Str(String),
}

impl FieldValue {
    /// Captures a value via its `Debug` rendering (the `?value` sigil).
    pub fn debug(value: &impl fmt::Debug) -> Self {
        FieldValue::Str(format!("{value:?}"))
    }

    /// Captures a value via its `Display` rendering (the `%value` sigil).
    pub fn display(value: &impl fmt::Display) -> Self {
        FieldValue::Str(value.to_string())
    }
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

macro_rules! impl_field_from {
    ($($ty:ty => $variant:ident as $repr:ty),* $(,)?) => {$(
        impl From<$ty> for FieldValue {
            fn from(v: $ty) -> Self {
                FieldValue::$variant(v as $repr)
            }
        }
    )*};
}

impl_field_from!(
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64, i64 => I64 as i64,
    isize => I64 as i64,
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64, u64 => U64 as u64,
    usize => U64 as u64,
    f32 => F64 as f64, f64 => F64 as f64,
);

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_owned())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl From<&String> for FieldValue {
    fn from(v: &String) -> Self {
        FieldValue::Str(v.clone())
    }
}

/// The key–value pairs attached to an event or span.
pub type Fields = Vec<(&'static str, FieldValue)>;

/// One emitted diagnostic event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Severity.
    pub level: Level,
    /// Module path of the call site.
    pub target: &'static str,
    /// The formatted message (may be empty).
    pub message: String,
    /// Structured fields, in call-site order.
    pub fields: Fields,
}

/// A scope of work. Created by the span macros; inert unless the active
/// subscriber enabled its level/target at creation time.
#[derive(Debug)]
pub struct Span {
    data: Option<SpanData>,
}

/// The observable contents of an enabled span.
#[derive(Debug, Clone)]
pub struct SpanData {
    /// Span name (first macro argument).
    pub name: &'static str,
    /// Severity.
    pub level: Level,
    /// Module path of the call site.
    pub target: &'static str,
    /// Structured fields, in call-site order.
    pub fields: Fields,
}

impl Span {
    /// Used by the span macros; prefer those.
    #[doc(hidden)]
    pub fn new(
        level: Level,
        target: &'static str,
        name: &'static str,
        fields: Fields,
        enabled: bool,
    ) -> Self {
        Span {
            data: enabled.then_some(SpanData {
                name,
                level,
                target,
                fields,
            }),
        }
    }

    /// A span that records nothing.
    pub fn none() -> Self {
        Span { data: None }
    }

    /// Whether a subscriber is observing this span.
    pub fn is_enabled(&self) -> bool {
        self.data.is_some()
    }

    /// Enters the span until the returned guard drops.
    pub fn entered(self) -> EnteredSpan {
        if let Some(data) = &self.data {
            subscriber::enter_span(data);
        }
        EnteredSpan {
            #[cfg(feature = "timing")]
            entered_at: self.data.as_ref().map(|_| Instant::now()),
            span: self,
        }
    }

    /// Runs `f` inside the span.
    pub fn in_scope<T>(&self, f: impl FnOnce() -> T) -> T {
        match &self.data {
            Some(data) => {
                subscriber::enter_span(data);
                #[cfg(feature = "timing")]
                let started = Instant::now();
                let result = f();
                #[cfg(feature = "timing")]
                subscriber::exit_span(data, Some(started.elapsed()));
                #[cfg(not(feature = "timing"))]
                subscriber::exit_span(data, None);
                result
            }
            None => f(),
        }
    }
}

/// Guard returned by [`Span::entered`]; exits the span on drop.
#[derive(Debug)]
pub struct EnteredSpan {
    span: Span,
    #[cfg(feature = "timing")]
    entered_at: Option<Instant>,
}

impl Drop for EnteredSpan {
    fn drop(&mut self) {
        if let Some(data) = &self.span.data {
            #[cfg(feature = "timing")]
            let elapsed = self.entered_at.map(|at| at.elapsed());
            #[cfg(not(feature = "timing"))]
            let elapsed: Option<Duration> = None;
            subscriber::exit_span(data, elapsed);
        }
    }
}

/// Observes events and span activity. Implementations must be cheap in
/// `enabled`: it gates every macro call site.
pub trait Subscriber: Send + Sync {
    /// Is this (level, target) worth recording?
    fn enabled(&self, level: Level, target: &str) -> bool;

    /// Called for each enabled event.
    fn event(&self, event: &Event);

    /// Called when an enabled span is entered.
    fn enter_span(&self, _span: &SpanData) {}

    /// Called when an enabled span exits. `elapsed` is `Some` only when the
    /// `timing` feature is active.
    fn exit_span(&self, _span: &SpanData, _elapsed: Option<Duration>) {}
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Emits an event at the given level. Structured fields come first, then an
/// optional format string with args: `event!(Level::INFO, n = 3, "msg {x}")`.
/// Field sigils: `k = ?v` captures `Debug`, `k = %v` captures `Display`.
#[macro_export]
macro_rules! event {
    ($level:expr, $($rest:tt)*) => {{
        let __level = $level;
        if $crate::subscriber::enabled(__level, ::core::module_path!()) {
            let mut __fields: $crate::Fields = ::std::vec::Vec::new();
            #[allow(clippy::redundant_closure_call)]
            let __message = $crate::__capture!(__fields; $($rest)*);
            $crate::subscriber::event(&$crate::Event {
                level: __level,
                target: ::core::module_path!(),
                message: __message,
                fields: __fields,
            });
        }
    }};
}

/// Creates a span at the given level: `span!(Level::DEBUG, "name", k = v)`.
#[macro_export]
macro_rules! span {
    ($level:expr, $name:expr $(, $($rest:tt)*)?) => {{
        let __level = $level;
        let __enabled = $crate::subscriber::enabled(__level, ::core::module_path!());
        let mut __fields: $crate::Fields = ::std::vec::Vec::new();
        if __enabled {
            let _ = $crate::__capture!(__fields; $($($rest)*)?);
        }
        $crate::Span::new(__level, ::core::module_path!(), $name, __fields, __enabled)
    }};
}

/// Captures `k = v` fields into `$fields`, returning the formatted trailing
/// message (empty if none). Internal to the event/span macros.
#[doc(hidden)]
#[macro_export]
macro_rules! __capture {
    ($fields:ident;) => { ::std::string::String::new() };
    ($fields:ident; $fmt:literal $(, $arg:expr)* $(,)?) => {
        ::std::format!($fmt $(, $arg)*)
    };
    ($fields:ident; $key:ident = ?$value:expr) => {{
        $fields.push((::core::stringify!($key), $crate::FieldValue::debug(&$value)));
        ::std::string::String::new()
    }};
    ($fields:ident; $key:ident = %$value:expr) => {{
        $fields.push((::core::stringify!($key), $crate::FieldValue::display(&$value)));
        ::std::string::String::new()
    }};
    ($fields:ident; $key:ident = $value:expr) => {{
        $fields.push((::core::stringify!($key), $crate::FieldValue::from($value)));
        ::std::string::String::new()
    }};
    ($fields:ident; $key:ident = ?$value:expr, $($rest:tt)*) => {{
        $fields.push((::core::stringify!($key), $crate::FieldValue::debug(&$value)));
        $crate::__capture!($fields; $($rest)*)
    }};
    ($fields:ident; $key:ident = %$value:expr, $($rest:tt)*) => {{
        $fields.push((::core::stringify!($key), $crate::FieldValue::display(&$value)));
        $crate::__capture!($fields; $($rest)*)
    }};
    ($fields:ident; $key:ident = $value:expr, $($rest:tt)*) => {{
        $fields.push((::core::stringify!($key), $crate::FieldValue::from($value)));
        $crate::__capture!($fields; $($rest)*)
    }};
}

/// Emits an event at `Level::ERROR`.
#[macro_export]
macro_rules! error {
    ($($rest:tt)*) => { $crate::event!($crate::Level::ERROR, $($rest)*) };
}

/// Emits an event at `Level::WARN`.
#[macro_export]
macro_rules! warn {
    ($($rest:tt)*) => { $crate::event!($crate::Level::WARN, $($rest)*) };
}

/// Emits an event at `Level::INFO`.
#[macro_export]
macro_rules! info {
    ($($rest:tt)*) => { $crate::event!($crate::Level::INFO, $($rest)*) };
}

/// Emits an event at `Level::DEBUG`.
#[macro_export]
macro_rules! debug {
    ($($rest:tt)*) => { $crate::event!($crate::Level::DEBUG, $($rest)*) };
}

/// Emits an event at `Level::TRACE`.
#[macro_export]
macro_rules! trace {
    ($($rest:tt)*) => { $crate::event!($crate::Level::TRACE, $($rest)*) };
}

/// Creates a span at `Level::ERROR`.
#[macro_export]
macro_rules! error_span {
    ($($rest:tt)*) => { $crate::span!($crate::Level::ERROR, $($rest)*) };
}

/// Creates a span at `Level::WARN`.
#[macro_export]
macro_rules! warn_span {
    ($($rest:tt)*) => { $crate::span!($crate::Level::WARN, $($rest)*) };
}

/// Creates a span at `Level::INFO`.
#[macro_export]
macro_rules! info_span {
    ($($rest:tt)*) => { $crate::span!($crate::Level::INFO, $($rest)*) };
}

/// Creates a span at `Level::DEBUG`.
#[macro_export]
macro_rules! debug_span {
    ($($rest:tt)*) => { $crate::span!($crate::Level::DEBUG, $($rest)*) };
}

/// Creates a span at `Level::TRACE`.
#[macro_export]
macro_rules! trace_span {
    ($($rest:tt)*) => { $crate::span!($crate::Level::TRACE, $($rest)*) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[derive(Default)]
    struct Capture {
        events: Mutex<Vec<Event>>,
        spans: Mutex<Vec<(String, bool)>>, // (name, is_enter)
        min_level: Option<Level>,
    }

    impl Subscriber for Arc<Capture> {
        fn enabled(&self, level: Level, _target: &str) -> bool {
            level <= self.min_level.unwrap_or(Level::Trace)
        }

        fn event(&self, event: &Event) {
            self.events.lock().unwrap().push(event.clone());
        }

        fn enter_span(&self, span: &SpanData) {
            self.spans
                .lock()
                .unwrap()
                .push((span.name.to_owned(), true));
        }

        fn exit_span(&self, span: &SpanData, _elapsed: Option<Duration>) {
            self.spans
                .lock()
                .unwrap()
                .push((span.name.to_owned(), false));
        }
    }

    #[test]
    fn events_carry_fields_and_message() {
        let capture = Arc::new(Capture::default());
        subscriber::with_default(capture.clone(), || {
            let late = 42;
            info!(
                subtask = 7usize,
                lateness = late,
                "deadline missed by {late}"
            );
        });
        let events = capture.events.lock().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].level, Level::Info);
        assert_eq!(events[0].message, "deadline missed by 42");
        assert_eq!(
            events[0].fields,
            vec![
                ("subtask", FieldValue::U64(7)),
                ("lateness", FieldValue::I64(42)),
            ]
        );
    }

    #[test]
    fn sigils_capture_debug_and_display() {
        let capture = Arc::new(Capture::default());
        subscriber::with_default(capture.clone(), || {
            debug!(shape = ?Some(3), pct = %"12%");
        });
        let events = capture.events.lock().unwrap();
        assert_eq!(
            events[0].fields,
            vec![
                ("shape", FieldValue::Str("Some(3)".into())),
                ("pct", FieldValue::Str("12%".into())),
            ]
        );
    }

    #[test]
    fn spans_enter_and_exit_in_order() {
        let capture = Arc::new(Capture::default());
        subscriber::with_default(capture.clone(), || {
            let outer = info_span!("outer", size = 4usize).entered();
            info_span!("inner").in_scope(|| {});
            drop(outer);
        });
        let spans = capture.spans.lock().unwrap();
        assert_eq!(
            *spans,
            vec![
                ("outer".to_owned(), true),
                ("inner".to_owned(), true),
                ("inner".to_owned(), false),
                ("outer".to_owned(), false),
            ]
        );
    }

    #[test]
    fn disabled_levels_are_skipped_entirely() {
        let capture = Arc::new(Capture {
            min_level: Some(Level::Warn),
            ..Capture::default()
        });
        subscriber::with_default(capture.clone(), || {
            info!("not recorded");
            let span = debug_span!("invisible");
            assert!(!span.is_enabled());
            let _guard = span.entered();
            warn!(violations = 2usize, "recorded");
        });
        assert!(capture.spans.lock().unwrap().is_empty());
        let events = capture.events.lock().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].level, Level::Warn);
    }

    #[test]
    fn no_subscriber_means_no_dispatch() {
        // Must not panic or loop; global default is unset in this test run.
        trace!(x = 1, "dropped");
        let _span = trace_span!("dropped").entered();
    }

    #[test]
    fn level_ordering_matches_verbosity() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Info <= Level::Debug);
        assert_eq!("warn".parse::<Level>().unwrap(), Level::Warn);
        assert_eq!(Level::Debug.to_string(), "DEBUG");
    }
}
