//! Offline shim for the subset of `rand` 0.8 used by this workspace.
//!
//! Provides [`Rng::gen_range`] over integer and float ranges,
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`] backed by
//! xoshiro256++ (seeded through SplitMix64). Deterministic across runs and
//! platforms; sequences are *not* bit-identical to upstream rand.

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding support for reproducible generators.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++.
    ///
    /// Fast, small-state, and passes BigCrush; statistically equivalent for
    /// simulation purposes to upstream's ChaCha12-based `StdRng` while being
    /// dependency-free.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

/// A range that supports uniform sampling (the `gen_range` argument).
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a `u64` to `[0, 1)` with 53 bits of precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform `u64` in `[0, span)` via widening multiply with rejection
/// (Lemire's method): unbiased and branch-light.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let word = rng.next_u64();
        let m = (word as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = bounded_u64(rng, span);
                ((self.start as i128) + off as i128) as $ty
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return rng.next_u64() as $ty;
                }
                let off = bounded_u64(rng, span as u64);
                ((lo as i128) + off as i128) as $ty
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $ty;
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $ty;
                lo + (hi - lo) * u
            }
        }
    )*};
}

impl_float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: Vec<u64> = (0..16).map(|_| c.gen_range(0..1u64 << 60)).collect();
        let mut a2 = StdRng::seed_from_u64(42);
        let other: Vec<u64> = (0..16).map(|_| a2.gen_range(0..1u64 << 60)).collect();
        assert_ne!(same, other);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn integer_sampling_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn unsized_rng_usable_through_generic() {
        fn draw<R: super::Rng + ?Sized>(rng: &mut R) -> i64 {
            rng.gen_range(1i64..=6)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let v = draw(&mut rng);
        assert!((1..=6).contains(&v));
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }
}
