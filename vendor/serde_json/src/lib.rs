//! Offline shim for the subset of `serde_json` 1 used by this workspace:
//! [`to_string`], [`to_string_pretty`], and [`from_str`] over the vendored
//! `serde` value-tree model. The emitted JSON matches upstream serde_json's
//! compact and pretty (2-space) layouts; the parser accepts arbitrary
//! standard JSON.

use serde::{Deserialize, Serialize};
use std::fmt;

pub use serde::Value;

/// A serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Never fails for the value shapes this workspace produces; the `Result`
/// mirrors the upstream signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (2-space indent).
///
/// # Errors
///
/// Never fails for the value shapes this workspace produces; the `Result`
/// mirrors the upstream signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Parses JSON text into `T`.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a structural mismatch with `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<&str>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // Debug formatting keeps a `.0` on integral floats and uses
                // the shortest representation that round-trips.
                out.push_str(&format!("{f:?}"));
            } else {
                // Upstream serde_json renders non-finite floats as null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(out, items.iter(), indent, level, ('[', ']'), |o, v, l| {
                write_value(o, v, indent, l)
            })
        }
        Value::Object(entries) => {
            write_seq(
                out,
                entries.iter(),
                indent,
                level,
                ('{', '}'),
                |o, (k, v), l| {
                    write_string(o, k);
                    o.push(':');
                    if indent.is_some() {
                        o.push(' ');
                    }
                    write_value(o, v, indent, l);
                },
            );
        }
    }
}

fn write_seq<I: ExactSizeIterator>(
    out: &mut String,
    items: I,
    indent: Option<&str>,
    level: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(&mut String, I::Item, usize),
) {
    out.push(brackets.0);
    let len = items.len();
    for (i, item) in items.enumerate() {
        if let Some(pad) = indent {
            out.push('\n');
            for _ in 0..=level {
                out.push_str(pad);
            }
        }
        write_item(out, item, level + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if len > 0 {
        if let Some(pad) = indent {
            out.push('\n');
            for _ in 0..level {
                out.push_str(pad);
            }
        }
    }
    out.push(brackets.1);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON value"));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.error("malformed number"))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        let mut run_start = self.pos;
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    out.push_str(self.run(run_start)?);
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(self.run(run_start)?);
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let first = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair: expect `\uXXXX` low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                    run_start = self.pos;
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    /// The unescaped byte run from `start` to the current position.
    fn run(&self, start: usize) -> Result<&'a str, Error> {
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error(format!("invalid UTF-8 at byte {start}")))
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn compact_layout_matches_upstream() {
        let v = Value::Object(vec![
            ("a".into(), Value::I64(1)),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[true,null]}"#);
    }

    #[test]
    fn pretty_layout_indents_two_spaces() {
        let v = Value::Object(vec![("a".into(), Value::Array(vec![Value::I64(1)]))]);
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"a\": [\n    1\n  ]\n}"
        );
    }

    #[test]
    fn floats_keep_their_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<f64>("2").unwrap(), 2.0);
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "line\n\"quoted\"\tüñí\u{08}".to_string();
        let json = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), original);
        assert_eq!(from_str::<String>(r#""A😀""#).unwrap(), "A😀");
    }

    #[test]
    fn round_trips_nested_structures() {
        let mut map = BTreeMap::new();
        map.insert(10u32, vec![(1usize, 0.5f64), (2, -3.25)]);
        map.insert(2, vec![]);
        let json = to_string_pretty(&map).unwrap();
        let back: BTreeMap<u32, Vec<(usize, f64)>> = from_str(&json).unwrap();
        assert_eq!(back, map);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("\"abc").is_err());
    }

    #[test]
    fn whitespace_tolerant() {
        let v: Vec<i64> = from_str(" [ 1 , 2 ,\n\t3 ] ").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }
}
