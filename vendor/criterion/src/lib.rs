//! Offline shim for the subset of `criterion` 0.5 used by this workspace.
//!
//! Implements the wall-clock benchmarking harness surface the `bench` crate
//! uses: [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros. Reports
//! min/median/max over the configured sample count to stdout; no HTML
//! reports, statistical regression analysis, or CLI filtering.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// The benchmark harness handle passed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function(name, f);
        group.finish();
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        report(&self.name, &id.0, &bencher.samples);
        self
    }

    /// Benchmarks `f`, handing it a borrowed input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group. (Upstream renders summary reports here; the shim
    /// reports per-benchmark, so this only consumes the group.)
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id with a function name and a parameter, `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{parameter}", name.into()))
    }

    /// An id that is just a parameter value (the group supplies the name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_owned())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Times the routine under measurement.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Collects the configured number of timed samples of `routine`.
    ///
    /// Fast routines are batched so each sample spans at least ~1 ms of
    /// wall clock, keeping timer quantization out of the measurement.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up and batch-size calibration.
        let start = Instant::now();
        std::hint::black_box(routine());
        let once = start.elapsed();
        let batch = if once < Duration::from_millis(1) {
            (Duration::from_millis(1).as_nanos() / once.as_nanos().max(1)).clamp(1, 1_000_000)
                as usize
        } else {
            1
        };
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }
}

fn report(group: &str, id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{group}/{id}: no samples collected");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    println!(
        "{group}/{id}: [{} {} {}] ({} samples)",
        fmt_duration(sorted[0]),
        fmt_duration(median),
        fmt_duration(*sorted.last().unwrap()),
        sorted.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Defines a benchmark group function, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        let mut runs = 0u64;
        group.bench_function("counter", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs >= 5);
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("gen", 16).0, "gen/16");
        assert_eq!(BenchmarkId::from_parameter("mdet").0, "mdet");
        assert_eq!(BenchmarkId::from("plain").0, "plain");
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(10)), "10 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }
}
