//! Offline shim for the subset of `serde` 1 used by this workspace.
//!
//! Upstream serde abstracts over data formats through a visitor-based data
//! model; this repository only ever serializes to and from JSON, so the shim
//! collapses the model to one concrete [`Value`] tree. [`Serialize`] renders
//! a value tree, [`Deserialize`] rebuilds a type from one, and the companion
//! `serde_json` shim renders/parses the tree as JSON text. The derive macros
//! (`features = ["derive"]`) generate structurally identical JSON to
//! upstream serde's defaults (externally tagged enums, transparent newtype
//! structs, struct maps in field order).

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the single data model of the shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer outside `i64` range (or naturally unsigned).
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] describing the first structural mismatch.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

/// A deserialization error (structural mismatch or out-of-range number).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// Creates a "expected X while deserializing Y, found Z" error.
    pub fn expected(what: &str, ty: &str, found: &Value) -> Self {
        DeError(format!(
            "expected {what} while deserializing {ty}, found {}",
            found.kind()
        ))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", "bool", other)),
        }
    }
}

macro_rules! impl_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n: i128 = match value {
                    Value::I64(n) => *n as i128,
                    Value::U64(n) => *n as i128,
                    other => return Err(DeError::expected("integer", stringify!($ty), other)),
                };
                <$ty>::try_from(n)
                    .map_err(|_| DeError::custom(format!("{n} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n: u64 = match value {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    other => return Err(DeError::expected("unsigned integer", stringify!($ty), other)),
                };
                <$ty>::try_from(n)
                    .map_err(|_| DeError::custom(format!("{n} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $ty {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::F64(f) => Ok(*f as $ty),
                    Value::I64(n) => Ok(*n as $ty),
                    Value::U64(n) => Ok(*n as $ty),
                    // serde_json renders non-finite floats as null.
                    Value::Null => Ok(<$ty>::NAN),
                    other => Err(DeError::expected("number", stringify!($ty), other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", "String", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-character string", "char", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Composite impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", "Vec", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                const LEN: usize = [$($idx),+].len();
                match value {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::expected("fixed-size array", "tuple", other)),
                }
            }
        }
    )+};
}

impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

impl<T: Serialize> Serialize for std::ops::RangeInclusive<T> {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("start".to_owned(), self.start().to_value()),
            ("end".to_owned(), self.end().to_value()),
        ])
    }
}

impl<T: Deserialize> Deserialize for std::ops::RangeInclusive<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let obj = value
            .as_object()
            .ok_or_else(|| DeError::expected("object", "RangeInclusive", value))?;
        let start = T::from_value(field(obj, "start"))?;
        let end = T::from_value(field(obj, "end"))?;
        Ok(start..=end)
    }
}

impl<T: Serialize> Serialize for std::ops::Range<T> {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("start".to_owned(), self.start.to_value()),
            ("end".to_owned(), self.end.to_value()),
        ])
    }
}

impl<T: Deserialize> Deserialize for std::ops::Range<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let obj = value
            .as_object()
            .ok_or_else(|| DeError::expected("object", "Range", value))?;
        Ok(T::from_value(field(obj, "start"))?..T::from_value(field(obj, "end"))?)
    }
}

/// Renders a map key as the JSON object key, mirroring serde_json's rule
/// that keys must be strings or integers.
fn key_string(key: Value) -> String {
    match key {
        Value::Str(s) => s,
        Value::I64(n) => n.to_string(),
        Value::U64(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!(
            "map key must serialize to a string or integer, got {}",
            other.kind()
        ),
    }
}

/// Rebuilds a map key from its JSON object-key string: integer keys were
/// stringified on the way out, so numeric strings are retried as integers.
fn key_from_str<K: Deserialize>(raw: &str) -> Result<K, DeError> {
    if let Ok(k) = K::from_value(&Value::Str(raw.to_owned())) {
        return Ok(k);
    }
    if let Ok(n) = raw.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::U64(n)) {
            return Ok(k);
        }
    }
    if let Ok(n) = raw.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::I64(n)) {
            return Ok(k);
        }
    }
    if raw == "true" || raw == "false" {
        if let Ok(k) = K::from_value(&Value::Bool(raw == "true")) {
            return Ok(k);
        }
    }
    Err(DeError::custom(format!(
        "cannot rebuild map key from {raw:?}"
    )))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let obj = value
            .as_object()
            .ok_or_else(|| DeError::expected("object", "BTreeMap", value))?;
        obj.iter()
            .map(|(k, v)| Ok((key_from_str(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let obj = value
            .as_object()
            .ok_or_else(|| DeError::expected("object", "HashMap", value))?;
        obj.iter()
            .map(|(k, v)| Ok((key_from_str(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

// ---------------------------------------------------------------------------
// Support for derived code
// ---------------------------------------------------------------------------

static NULL: Value = Value::Null;

/// Looks up `name` in an object's entries; missing fields read as `null`
/// (which deserializes to `None` for `Option` fields and errors otherwise).
pub fn field<'a>(entries: &'a [(String, Value)], name: &str) -> &'a Value {
    entries
        .iter()
        .find_map(|(k, v)| (k == name).then_some(v))
        .unwrap_or(&NULL)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(i64::from_value(&(-7i64).to_value()), Ok(-7));
        assert_eq!(usize::from_value(&42usize.to_value()), Ok(42));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn integer_cross_width_and_sign() {
        assert_eq!(u32::from_value(&Value::I64(7)), Ok(7));
        assert_eq!(i32::from_value(&Value::U64(7)), Ok(7));
        assert!(u8::from_value(&Value::I64(300)).is_err());
        assert!(u32::from_value(&Value::I64(-1)).is_err());
        assert_eq!(f64::from_value(&Value::I64(2)), Ok(2.0));
    }

    #[test]
    fn option_vec_tuple_round_trip() {
        let v: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&v.to_value()), Ok(None));
        let v = Some(3u32);
        assert_eq!(Option::<u32>::from_value(&v.to_value()), Ok(Some(3)));
        let xs = vec![(2usize, -1.5f64), (4, 0.25)];
        assert_eq!(Vec::<(usize, f64)>::from_value(&xs.to_value()), Ok(xs));
    }

    #[test]
    fn range_inclusive_round_trip() {
        let r = 40usize..=60;
        assert_eq!(
            std::ops::RangeInclusive::<usize>::from_value(&r.to_value()),
            Ok(r)
        );
    }

    #[test]
    fn map_keys_stringify_and_parse_back() {
        let mut m = BTreeMap::new();
        m.insert(3u32, "a".to_string());
        m.insert(7, "b".to_string());
        let v = m.to_value();
        let obj = v.as_object().unwrap();
        assert_eq!(obj[0].0, "3");
        assert_eq!(BTreeMap::<u32, String>::from_value(&v), Ok(m));
    }

    #[test]
    fn errors_name_the_mismatch() {
        let e = Vec::<u32>::from_value(&Value::Bool(true)).unwrap_err();
        assert!(e.to_string().contains("expected array"));
    }
}
