//! Offline shim for `serde_derive`: `#[derive(Serialize, Deserialize)]`.
//!
//! Hand-rolled on top of `proc_macro` alone (no syn/quote, which are not
//! available offline). The parser extracts only what codegen needs — the type
//! name, field names, and variant shapes; field *types* never matter because
//! the generated code calls trait methods and lets inference resolve them.
//!
//! Supported shapes (everything this workspace derives on):
//! - structs: named fields, tuple (newtype serializes transparently, like
//!   upstream), unit; `#[serde(transparent)]` on single-field structs
//! - enums with unit / newtype / tuple / struct variants, externally tagged
//!   exactly like upstream serde's default representation
//!
//! Not supported (rejected with `compile_error!`): generic types, unions,
//! and `#[serde(...)]` attributes other than `transparent`.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

/// Derives `serde::Serialize` (value-tree model; see the vendored `serde`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives `serde::Deserialize` (value-tree model; see the vendored `serde`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Input) -> String) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => {
            let code = gen(&parsed);
            code.parse()
                .unwrap_or_else(|e| panic!("serde_derive generated invalid code: {e}\n{code}"))
        }
        Err(msg) => format!("::core::compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---------------------------------------------------------------------------
// Model
// ---------------------------------------------------------------------------

struct Input {
    name: String,
    transparent: bool,
    data: Data,
}

enum Data {
    Struct(Fields),
    Enum(Vec<Variant>),
}

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut transparent = false;

    // Outer attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => match tokens.get(i + 1) {
                Some(TokenTree::Group(g)) => {
                    transparent |= attr_is_serde_transparent(g);
                    i += 2;
                }
                _ => return Err("malformed attribute".into()),
            },
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected type name".into()),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "vendored serde_derive does not support generic types (`{name}`)"
            ));
        }
    }

    let data = match kind.as_str() {
        "struct" => Data::Struct(match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
            _ => return Err(format!("unsupported struct body for `{name}`")),
        }),
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream())?)
            }
            _ => return Err(format!("expected enum body for `{name}`")),
        },
        other => return Err(format!("cannot derive for `{other}` items")),
    };

    Ok(Input {
        name,
        transparent,
        data,
    })
}

/// Does an attribute group (the `[...]` after `#`) read `serde(transparent)`?
fn attr_is_serde_transparent(group: &Group) -> bool {
    let mut toks = group.stream().into_iter();
    match (toks.next(), toks.next()) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(inner)))
            if id.to_string() == "serde" =>
        {
            inner
                .stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "transparent"))
        }
        _ => false,
    }
}

/// Extracts field names from `{ ... }` contents, skipping attributes,
/// visibility, and types. Commas inside generic arguments (`BTreeMap<K, V>`)
/// are ignored by tracking angle-bracket depth.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut names = Vec::new();
    while i < toks.len() {
        while matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == '#') {
            i += 2; // `#` + bracket group
        }
        if matches!(&toks[i], TokenTree::Ident(id) if id.to_string() == "pub") {
            i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
        match toks.get(i) {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            _ => return Err("expected field name".into()),
        }
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => {
                return Err(format!(
                    "expected `:` after field `{}`",
                    names.last().unwrap()
                ))
            }
        }
        let mut depth = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(names)
}

/// Counts fields in `( ... )` contents: depth-0 commas delimit fields.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0;
    let mut depth = 0i32;
    let mut in_segment = false;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if in_segment {
                    count += 1;
                    in_segment = false;
                }
                continue;
            }
            _ => {}
        }
        in_segment = true;
    }
    if in_segment {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        while matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == '#') {
            i += 2;
        }
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => return Err("expected variant name".into()),
        };
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream())?)
            }
            _ => Fields::Unit,
        };
        if let Some(TokenTree::Punct(p)) = toks.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn join(parts: impl Iterator<Item = String>, sep: &str) -> String {
    parts.collect::<Vec<_>>().join(sep)
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.data {
        Data::Struct(Fields::Named(fields)) if input.transparent && fields.len() == 1 => {
            format!("::serde::Serialize::to_value(&self.{})", fields[0])
        }
        Data::Struct(Fields::Named(fields)) => {
            let entries = join(
                fields.iter().map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                }),
                ", ",
            );
            format!("::serde::Value::Object(::std::vec![{entries}])")
        }
        // Newtype structs serialize as their inner value (upstream default).
        Data::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_owned(),
        Data::Struct(Fields::Tuple(n)) => {
            let items = join(
                (0..*n).map(|k| format!("::serde::Serialize::to_value(&self.{k})")),
                ", ",
            );
            format!("::serde::Value::Array(::std::vec![{items}])")
        }
        Data::Struct(Fields::Unit) => "::serde::Value::Null".to_owned(),
        Data::Enum(variants) => {
            let arms = join(
                variants.iter().map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => \
                             ::serde::Value::Str(::std::string::String::from({vn:?}))"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from({vn:?}), \
                             ::serde::Serialize::to_value(__f0))])"
                        ),
                        Fields::Tuple(n) => {
                            let binds = join((0..*n).map(|k| format!("__f{k}")), ", ");
                            let items = join(
                                (0..*n).map(|k| format!("::serde::Serialize::to_value(__f{k})")),
                                ", ",
                            );
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from({vn:?}), \
                                 ::serde::Value::Array(::std::vec![{items}]))])"
                            )
                        }
                        Fields::Named(fs) => {
                            let binds = fs.join(", ");
                            let entries = join(
                                fs.iter().map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                }),
                                ", ",
                            );
                            format!(
                                "{name}::{vn} {{ {binds} }} => \
                                 ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from({vn:?}), \
                                 ::serde::Value::Object(::std::vec![{entries}]))])"
                            )
                        }
                    }
                }),
                ", ",
            );
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
         fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.data {
        Data::Struct(Fields::Named(fields)) if input.transparent && fields.len() == 1 => {
            format!(
                "::core::result::Result::Ok({name} {{ {}: \
                 ::serde::Deserialize::from_value(value)? }})",
                fields[0]
            )
        }
        Data::Struct(Fields::Named(fields)) => {
            let lets = join(fields.iter().map(|f| field_let(name, f, "__entries")), " ");
            let build = fields.join(", ");
            format!(
                "let __entries = match value.as_object() {{ \
                 ::core::option::Option::Some(e) => e, \
                 ::core::option::Option::None => return ::core::result::Result::Err(\
                 ::serde::DeError::expected(\"object\", {name:?}, value)) }}; \
                 {lets} ::core::result::Result::Ok({name} {{ {build} }})"
            )
        }
        Data::Struct(Fields::Tuple(1)) => {
            format!("::core::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))")
        }
        Data::Struct(Fields::Tuple(n)) => {
            let items = join(
                (0..*n).map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?")),
                ", ",
            );
            format!(
                "let __items = match value.as_array() {{ \
                 ::core::option::Option::Some(a) if a.len() == {n} => a, \
                 _ => return ::core::result::Result::Err(::serde::DeError::expected(\
                 \"array of {n}\", {name:?}, value)) }}; \
                 ::core::result::Result::Ok({name}({items}))"
            )
        }
        Data::Struct(Fields::Unit) => format!(
            "match value {{ ::serde::Value::Null => ::core::result::Result::Ok({name}), \
             other => ::core::result::Result::Err(\
             ::serde::DeError::expected(\"null\", {name:?}, other)) }}"
        ),
        Data::Enum(variants) => {
            let unit_arms = join(
                variants
                    .iter()
                    .filter(|v| matches!(v.fields, Fields::Unit))
                    .map(|v| {
                        let vn = &v.name;
                        format!("{vn:?} => ::core::result::Result::Ok({name}::{vn})")
                    }),
                ", ",
            );
            let str_match = if unit_arms.is_empty() {
                format!(
                    "::core::result::Result::Err(::serde::DeError::custom(\
                     ::std::format!(\"unknown variant `{{}}` of `{name}`\", __s)))"
                )
            } else {
                format!(
                    "match __s.as_str() {{ {unit_arms}, \
                     __other => ::core::result::Result::Err(::serde::DeError::custom(\
                     ::std::format!(\"unknown variant `{{}}` of `{name}`\", __other))) }}"
                )
            };
            let tagged: Vec<&Variant> = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .collect();
            let object_arm = if tagged.is_empty() {
                String::new()
            } else {
                let arms = join(
                    tagged.iter().map(|v| {
                        let vn = &v.name;
                        match &v.fields {
                            Fields::Tuple(1) => format!(
                                "{vn:?} => ::core::result::Result::Ok({name}::{vn}(\
                                 ::serde::Deserialize::from_value(__payload)?))"
                            ),
                            Fields::Tuple(n) => {
                                let items = join(
                                    (0..*n).map(|k| {
                                        format!("::serde::Deserialize::from_value(&__items[{k}])?")
                                    }),
                                    ", ",
                                );
                                format!(
                                    "{vn:?} => {{ let __items = match __payload.as_array() {{ \
                                     ::core::option::Option::Some(a) if a.len() == {n} => a, \
                                     _ => return ::core::result::Result::Err(\
                                     ::serde::DeError::expected(\"array of {n}\", \
                                     \"{name}::{vn}\", __payload)) }}; \
                                     ::core::result::Result::Ok({name}::{vn}({items})) }}"
                                )
                            }
                            Fields::Named(fs) => {
                                let lets = join(
                                    fs.iter()
                                        .map(|f| field_let(&format!("{name}::{vn}"), f, "__ve")),
                                    " ",
                                );
                                let build = fs.join(", ");
                                format!(
                                    "{vn:?} => {{ let __ve = match __payload.as_object() {{ \
                                     ::core::option::Option::Some(e) => e, \
                                     ::core::option::Option::None => return \
                                     ::core::result::Result::Err(::serde::DeError::expected(\
                                     \"object\", \"{name}::{vn}\", __payload)) }}; \
                                     {lets} ::core::result::Result::Ok(\
                                     {name}::{vn} {{ {build} }}) }}"
                                )
                            }
                            Fields::Unit => unreachable!(),
                        }
                    }),
                    ", ",
                );
                format!(
                    "::serde::Value::Object(__entries) if __entries.len() == 1 => {{ \
                     let (__tag, __payload) = &__entries[0]; \
                     match __tag.as_str() {{ {arms}, \
                     __other => ::core::result::Result::Err(::serde::DeError::custom(\
                     ::std::format!(\"unknown variant `{{}}` of `{name}`\", __other))) }} }},"
                )
            };
            format!(
                "match value {{ \
                 ::serde::Value::Str(__s) => {str_match}, \
                 {object_arm} \
                 __other => ::core::result::Result::Err(::serde::DeError::expected(\
                 \"string or single-entry object\", {name:?}, __other)) }}"
            )
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
         fn from_value(value: &::serde::Value) \
         -> ::core::result::Result<Self, ::serde::DeError> {{ {body} }} }}"
    )
}

/// A `let <field> = ...;` statement that reads a named field from object
/// entries and annotates errors with the owning type and field name.
fn field_let(owner: &str, field: &str, entries_var: &str) -> String {
    format!(
        "let {field} = match ::serde::Deserialize::from_value(\
         ::serde::field({entries_var}, {field:?})) {{ \
         ::core::result::Result::Ok(v) => v, \
         ::core::result::Result::Err(e) => return ::core::result::Result::Err(\
         ::serde::DeError::custom(::std::format!(\"{owner}.{field}: {{}}\", e))) }};"
    )
}
