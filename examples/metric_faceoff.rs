//! Compares all four deadline-distribution metrics on identical random
//! workloads across system sizes — a miniature version of the paper's
//! Figures 2 and 5, runnable in seconds.
//!
//! ```text
//! cargo run --release --example metric_faceoff
//! ```

use feast::{Runner, Scenario};
use slicing::{CommEstimate, MetricKind};
use taskgraph::gen::{ExecVariation, WorkloadSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let variation = ExecVariation::Mdet;
    let workload = WorkloadSpec::paper(variation);
    let sizes: Vec<usize> = vec![2, 4, 8, 16];
    let replications = 32;

    let contenders = [
        ("NORM ", MetricKind::norm()),
        ("PURE ", MetricKind::pure()),
        ("THRES", MetricKind::thres(1.0)),
        ("ADAPT", MetricKind::adapt()),
    ];

    println!(
        "mean maximum task lateness over {replications} random graphs ({}; lower is better)\n",
        variation.label()
    );
    print!("{:<7}", "metric");
    for n in &sizes {
        print!("{:>10}", format!("{n} procs"));
    }
    println!();

    let mut series = Vec::new();
    for (label, metric) in contenders {
        let scenario = Scenario::paper(label.trim(), workload.clone(), metric, CommEstimate::Ccne)
            .with_system_sizes(sizes.clone())
            .with_replications(replications);
        let result = Runner::new(scenario).run()?;
        print!("{label:<7}");
        for point in &result.points {
            print!("{:>10.0}", point.max_lateness.mean);
        }
        println!();
        series.push((label, result));
    }

    // Sanity: the static metrics are structurally sound on every sampled
    // workload. ADAPT is reported rather than asserted: its adaptive window
    // splitting is known to produce occasional producer/consumer window
    // overlaps (~1% of MDET graphs on 2 processors), which the violation
    // counter exists to surface.
    for (label, result) in &series {
        let violations: usize = result.points.iter().map(|p| p.violations).sum();
        if label.trim() == "ADAPT" {
            if violations > 0 {
                println!("\nnote: ADAPT produced {violations} window-overlap violation(s)");
            }
        } else {
            assert_eq!(violations, 0, "{label} produced structural violations");
        }
    }

    // The paper's headline — ADAPT beating PURE on the smallest system —
    // holds in aggregate over the LDET/MDET/HDET variation levels (see
    // tests/experiments_shape.rs); on this single MDET sample the two track
    // each other within replication noise.
    let pure_small = series[1].1.points[0].max_lateness.mean;
    let adapt_small = series[3].1.points[0].max_lateness.mean;
    println!(
        "\nADAPT vs PURE on 2 processors: {adapt_small:.0} vs {pure_small:.0} \
         ({:+.0}% lateness)",
        (adapt_small - pure_small) / pure_small.abs() * 100.0
    );
    Ok(())
}
