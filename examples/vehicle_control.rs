//! Relaxed locality constraints in practice: a vehicle-control application
//! where only the sensor and actuator subtasks are pinned to the processors
//! wired to their devices, while the computation pipeline floats freely.
//!
//! This is exactly the setting of the paper: a *subset* of the tasks is
//! governed by strict locality constraints, so deadline distribution must
//! happen before the (remaining) task assignment is known.
//!
//! ```text
//! cargo run --example vehicle_control
//! ```

use platform::{Pinning, Platform, ProcessorId};
use sched::{LatenessReport, ListScheduler};
use slicing::Slicer;
use taskgraph::{Subtask, SubtaskId, TaskGraph, Time};

struct Pipeline {
    graph: TaskGraph,
    wheel_sensors: Vec<SubtaskId>,
    brake_actuators: Vec<SubtaskId>,
}

/// Builds an anti-lock braking pipeline: four wheel-speed sensors feed a
/// slip estimator per axle; a controller fuses both and commands four brake
/// actuators, all within a 400-unit end-to-end deadline.
fn build_pipeline() -> Result<Pipeline, Box<dyn std::error::Error>> {
    let mut b = TaskGraph::builder();
    let deadline = Time::new(400);

    let mut wheel_sensors = Vec::new();
    for name in ["fl_speed", "fr_speed", "rl_speed", "rr_speed"] {
        wheel_sensors.push(
            b.add_subtask(
                Subtask::new(Time::new(8))
                    .named(name)
                    .released_at(Time::ZERO),
            ),
        );
    }
    let front_slip = b.add_subtask(Subtask::new(Time::new(35)).named("front_slip"));
    let rear_slip = b.add_subtask(Subtask::new(Time::new(35)).named("rear_slip"));
    let controller = b.add_subtask(Subtask::new(Time::new(50)).named("abs_controller"));
    let mut brake_actuators = Vec::new();
    for name in ["fl_brake", "fr_brake", "rl_brake", "rr_brake"] {
        brake_actuators
            .push(b.add_subtask(Subtask::new(Time::new(6)).named(name).due_at(deadline)));
    }

    b.add_edge(wheel_sensors[0], front_slip, 12)?;
    b.add_edge(wheel_sensors[1], front_slip, 12)?;
    b.add_edge(wheel_sensors[2], rear_slip, 12)?;
    b.add_edge(wheel_sensors[3], rear_slip, 12)?;
    b.add_edge(front_slip, controller, 20)?;
    b.add_edge(rear_slip, controller, 20)?;
    for &a in &brake_actuators {
        b.add_edge(controller, a, 4)?;
    }

    Ok(Pipeline {
        graph: b.build()?,
        wheel_sensors,
        brake_actuators,
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pipeline = build_pipeline()?;
    let graph = &pipeline.graph;

    // Four ECUs on a shared vehicle bus. Front devices are wired to ECU 0,
    // rear devices to ECU 1 — those subtasks are strictly constrained. The
    // slip estimators and the controller can run anywhere.
    let platform = Platform::paper(4)?;
    let mut pins = Pinning::new();
    for (i, &s) in pipeline.wheel_sensors.iter().enumerate() {
        pins.pin(s, ProcessorId::new(if i < 2 { 0 } else { 1 }))?;
    }
    for (i, &a) in pipeline.brake_actuators.iter().enumerate() {
        pins.pin(a, ProcessorId::new(if i < 2 { 0 } else { 1 }))?;
    }
    println!(
        "{} of {} subtasks pinned (relaxed locality constraints)",
        pins.len(),
        graph.subtask_count()
    );

    // Deadline distribution happens *before* the floating tasks are placed.
    for slicer in [Slicer::bst_pure(), Slicer::ast_adapt()] {
        let assignment = slicer.distribute(graph, &platform)?;
        let schedule = ListScheduler::new().schedule(graph, &platform, &assignment, &pins)?;
        assert!(
            schedule.validate(graph, &platform, &pins, false).is_empty(),
            "schedule must honour pins, precedence and bus delays"
        );
        let lateness = LatenessReport::new(graph, &assignment, &schedule);
        println!(
            "\n{:<6} max lateness {:>5}, end-to-end {:>5}, makespan {:>4}, feasible: {}",
            assignment.metric_name(),
            lateness.max_lateness().to_string(),
            lateness.end_to_end_lateness().to_string(),
            schedule.makespan(),
            lateness.is_feasible()
        );
        for entry in schedule.entries() {
            let name = graph.subtask(entry.subtask).name().unwrap_or("?");
            let pinned = if pins.is_pinned(entry.subtask) {
                " (pinned)"
            } else {
                ""
            };
            println!(
                "  {name:<15} {} [{:>3}, {:>3}){pinned}",
                entry.processor, entry.start, entry.finish
            );
        }
    }
    Ok(())
}
