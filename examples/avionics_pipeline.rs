//! A deeper end-to-end scenario: a fork–join avionics surveillance pipeline
//! on a six-processor mesh, exercising structured workload generation,
//! alternative topologies, CCAA estimation and the bus-contention model.
//!
//! ```text
//! cargo run --example avionics_pipeline
//! ```

use platform::{Pinning, Platform, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sched::{BusModel, LatenessReport, ListScheduler};
use slicing::{CommEstimate, Slicer};
use taskgraph::analysis::GraphAnalysis;
use taskgraph::gen::{generate_shape, ExecVariation, Shape, WorkloadSpec};
use taskgraph::Time;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A radar frame flows through five fork-join stages (beam-forming,
    // pulse compression, doppler filtering, CFAR detection, tracking), each
    // fanned out over six worker subtasks.
    let spec = WorkloadSpec::paper(ExecVariation::Ldet)
        .with_mean_exec_time(25)
        .with_olr(2.0)
        .with_ccr(0.8);
    let shape = Shape::ForkJoin {
        stages: 5,
        width: 6,
    };
    let mut rng = StdRng::seed_from_u64(0xA110C);
    let graph = generate_shape(shape, &spec, &mut rng)?;

    let analysis = GraphAnalysis::new(&graph);
    println!(
        "workload {}: {} subtasks, depth {}, parallelism xi = {:.2}, total work {}",
        shape.label(),
        graph.subtask_count(),
        analysis.depth(),
        analysis.avg_parallelism(),
        analysis.total_work()
    );

    // A 3x2 mesh of processing nodes, one time unit per item per hop.
    let platform = Platform::homogeneous(
        6,
        Topology::Mesh2D {
            width: 3,
            height: 2,
            cost_per_item_hop: Time::new(1),
        },
    )?;

    // Compare estimation strategies and bus models on the same workload.
    let configs = [
        (
            "ADAPT + CCNE, fixed delay",
            Slicer::ast_adapt(),
            BusModel::Delay,
        ),
        (
            "ADAPT + CCAA, fixed delay",
            Slicer::ast_adapt().with_estimate(CommEstimate::Ccaa),
            BusModel::Delay,
        ),
        (
            "ADAPT + CCNE, contention",
            Slicer::ast_adapt(),
            BusModel::Contention,
        ),
    ];

    println!(
        "\n{:<28}{:>14}{:>14}{:>10}",
        "configuration", "max lateness", "end-to-end", "makespan"
    );
    for (label, slicer, bus) in configs {
        let assignment = slicer.distribute(&graph, &platform)?;
        assert!(assignment.validate(&graph).is_ok());
        let schedule = ListScheduler::new().with_bus_model(bus).schedule(
            &graph,
            &platform,
            &assignment,
            &Pinning::new(),
        )?;
        assert!(schedule
            .validate(
                &graph,
                &platform,
                &Pinning::new(),
                bus == BusModel::Contention
            )
            .is_empty());
        let report = LatenessReport::new(&graph, &assignment, &schedule);
        println!(
            "{label:<28}{:>14}{:>14}{:>10}",
            report.max_lateness().to_string(),
            report.end_to_end_lateness().to_string(),
            schedule.makespan()
        );
    }

    println!("\n(negative lateness = slack in hand; CCAA reserves bus windows up front,");
    println!(" contention queues transfers through the shared medium)");
    Ok(())
}
