//! Quickstart: distribute an end-to-end deadline over a small task graph,
//! schedule it, and inspect the result.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use platform::{Pinning, Platform};
use sched::{LatenessReport, ListScheduler};
use slicing::Slicer;
use taskgraph::{Subtask, TaskGraph, Time};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tiny signal-processing application: one sensor feeds two parallel
    // filter stages whose results are fused and sent to an actuator.
    //
    //            +-> filter_a (30) -+
    // sample(10)-|                  |-> fuse (15) -> actuate (5)
    //            +-> filter_b (40) -+
    let mut b = TaskGraph::builder();
    let sample = b.add_subtask(
        Subtask::new(Time::new(10))
            .named("sample")
            .released_at(Time::ZERO),
    );
    let filter_a = b.add_subtask(Subtask::new(Time::new(30)).named("filter_a"));
    let filter_b = b.add_subtask(Subtask::new(Time::new(40)).named("filter_b"));
    let fuse = b.add_subtask(Subtask::new(Time::new(15)).named("fuse"));
    let actuate = b.add_subtask(
        Subtask::new(Time::new(5))
            .named("actuate")
            .due_at(Time::new(150)), // end-to-end deadline
    );
    b.add_edge(sample, filter_a, 16)?;
    b.add_edge(sample, filter_b, 16)?;
    b.add_edge(filter_a, fuse, 8)?;
    b.add_edge(filter_b, fuse, 8)?;
    b.add_edge(fuse, actuate, 2)?;
    let graph = b.build()?;

    // Two processors on a shared bus, one time unit per transmitted item.
    let platform = Platform::paper(2)?;

    // Distribute the end-to-end deadline with the paper's ADAPT metric —
    // note that no task-processor assignment exists yet.
    let slicer = Slicer::ast_adapt();
    let assignment = slicer.distribute(&graph, &platform)?;

    println!("deadline distribution ({}):", assignment.metric_name());
    for id in graph.subtask_ids() {
        let name = graph.subtask(id).name().unwrap_or("?");
        println!(
            "  {name:<9} window {}  (laxity {})",
            assignment.window(id),
            assignment.laxity(&graph, id)
        );
    }
    let report = assignment.validate(&graph);
    println!("structural check: {report}");

    // Now assign and schedule with the deadline-driven list scheduler.
    let schedule =
        ListScheduler::new().schedule(&graph, &platform, &assignment, &Pinning::new())?;
    println!("\nschedule (makespan {}):", schedule.makespan());
    for entry in schedule.entries() {
        let name = graph.subtask(entry.subtask).name().unwrap_or("?");
        println!(
            "  {name:<9} on {} at [{}, {})",
            entry.processor, entry.start, entry.finish
        );
    }

    let lateness = LatenessReport::new(&graph, &assignment, &schedule);
    println!(
        "\nmax task lateness: {} (critical subtask: {})",
        lateness.max_lateness(),
        graph
            .subtask(lateness.critical_subtask())
            .name()
            .unwrap_or("?")
    );
    println!("end-to-end lateness: {}", lateness.end_to_end_lateness());
    assert!(
        lateness.is_feasible(),
        "the quickstart workload is feasible"
    );
    Ok(())
}
